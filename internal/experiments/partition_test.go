package experiments

import "testing"

// The acceptance criterion of the partition experiment: with a seeded
// healing partition, every registered system fails queries during the
// window and reconverges after the heal — the post-heal failure rate is
// exactly zero and every false suspicion the detector opened has cleared.
func TestPartitionReconvergesAfterHeal(t *testing.T) {
	p := Quick()
	p.PartitionDurations = []float64{10}
	tables, err := Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("want 4 tables, got %d", len(tables))
	}
	failTbl, detTbl, flashTbl, hopsTbl := tables[0], tables[1], tables[2], tables[3]

	systems := systemNames()
	duringAny := false
	for _, sys := range systems {
		during := failTbl.Column(sys + "_during")
		post := failTbl.Column(sys + "_post")
		for i := range post {
			if post[i] != 0 {
				t.Errorf("%s post-heal failure rate = %g at row %d, want 0", sys, post[i], i)
			}
			if during[i] > 0 {
				duringAny = true
			}
		}
	}
	if !duringAny {
		t.Error("no system failed any query during the partition window — the fault injected nothing")
	}

	// The detector opened suspicions across the cut (all false: every node
	// stayed alive) and cleared every one of them after the heal.
	sus := detTbl.Column("suspicions")
	falseSus := detTbl.Column("false_suspicions")
	cleared := detTbl.Column("cleared")
	confirms := detTbl.Column("confirms")
	settle := detTbl.Column("detector_settle_s")
	for i := range sus {
		if sus[i] == 0 {
			t.Errorf("row %d: partition opened no suspicions", i)
		}
		if falseSus[i] != sus[i] {
			t.Errorf("row %d: %g of %g suspicions false, want all (no node crashed)", i, falseSus[i], sus[i])
		}
		if cleared[i] != sus[i] {
			t.Errorf("row %d: cleared %g of %g suspicions", i, cleared[i], sus[i])
		}
		if confirms[i] != 0 {
			t.Errorf("row %d: %g live nodes confirmed dead (split-brain)", i, confirms[i])
		}
		if settle[i] >= partitionSettle {
			t.Errorf("row %d: detector never settled (%g s)", i, settle[i])
		}
	}

	// Flash crowd: joins must not disturb correctness, and gossip must have
	// spread the newcomers at least somewhat.
	for _, sys := range systems {
		for i, v := range flashTbl.Column(sys + "_fail") {
			if v != 0 {
				t.Errorf("flash row %d: %s failure rate %g after join burst, want 0", i, sys, v)
			}
		}
	}
	for i, v := range flashTbl.Column("newcomer_known_frac") {
		if v <= 0 {
			t.Errorf("flash row %d: newcomers unknown to every incumbent", i)
		}
	}

	// ReCord: both settings answer every query; hops stay in a sane band.
	for _, col := range []string{"sword_hops", "maan_hops"} {
		vals := hopsTbl.Column(col)
		if len(vals) != 2 {
			t.Fatalf("hops table: want 2 rows, got %d", len(vals))
		}
		for i, v := range vals {
			if v <= 0 {
				t.Errorf("hops table row %d: %s = %g, want > 0", i, col, v)
			}
		}
	}
}
