package experiments

import (
	"fmt"

	"lorm/internal/discovery"
	"lorm/internal/faults"
	"lorm/internal/maan"
	"lorm/internal/membership"
	"lorm/internal/netfault"
	"lorm/internal/resource"
	"lorm/internal/sim"
	"lorm/internal/stats"
	"lorm/internal/sword"
	"lorm/internal/systemtest"
	"lorm/internal/workload"
)

// partitionSettle is the post-heal observation window: long enough for the
// failure detector to clear every false suspicion (a few shuffle rounds)
// and for the query stream to demonstrate a zero failure rate.
const partitionSettle = 30.0

// flashAt is the virtual time the flash-crowd burst joins, and
// flashHorizon the total virtual duration of a flash run.
const (
	flashAt      = 10.0
	flashHorizon = 50.0
)

// Partition runs the network-fault evaluation the paper's graceful churn
// model excludes, in three parts:
//
//  1. Healing partition: every registered system serves the figure-6 query load
//     while a seeded netfault.Plane cuts a minority of nodes away at
//     PartitionAt and heals the cut after each swept duration. Queries
//     that error or mismatch the static oracle count as failures,
//     bucketed into during-window and post-heal phases. A Cyclon-style
//     membership layer gossips through the same plane, so the partition
//     also produces false suspicions that must all clear after the heal;
//     reconvergence is the time from heal until the last observed
//     failure (queries) and until no false suspicion remains (detector).
//  2. Flash crowd: JoinBursts nodes join every system at the same
//     instant of a smaller (non-complete) deployment; the query stream
//     measures whether the burst disturbs correctness and the membership
//     layer reports how widely the newcomers have spread.
//  3. ReCord hops: SWORD and MAAN rebuilt with deterministic versus
//     randomized (ReCord-style) fingers answer the same exact-match
//     query set, comparing the hop-count cost of randomization.
//
// Node crashes compose with the partition when PartitionCrashRate > 0:
// crash events reach only the membership layer, and Crashable.FailNode
// fires when the failure detector confirms the failure — never from the
// fault plan directly.
func Partition(p Params) ([]*stats.Table, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, d := range p.PartitionDurations {
		if d >= p.MembershipConfirmAfter {
			return nil, fmt.Errorf(
				"experiments: partition duration %g ≥ confirm timeout %g would split-brain live nodes",
				d, p.MembershipConfirmAfter)
		}
	}

	names := systemNames()
	failCols := []string{"duration"}
	detCols := []string{"duration"}
	for _, name := range names {
		failCols = append(failCols, name+"_during", name+"_post")
		detCols = append(detCols, name+"_reconv_s")
	}
	detCols = append(detCols,
		"detector_settle_s", "suspicions", "false_suspicions", "cleared", "confirms", "lost_entries")
	failTbl := stats.NewTable("Healing partition: query-failure rate during and after the fault window",
		failCols...)
	failTbl.Notes = append(failTbl.Notes,
		fmt.Sprintf("n=%d, partition of %g of the ring at t=%g, %d queries per system over each run",
			p.N, p.PartitionFraction, p.PartitionAt, p.ChurnQueries),
		"failure = Discover error or owner set differing from the static oracle",
		"post = failure rate from heal to end of run; reconvergence requires it to reach 0")
	detTbl := stats.NewTable("Healing partition: reconvergence and failure-detector behavior",
		detCols...)
	detTbl.Notes = append(detTbl.Notes,
		"reconv_s = time from heal to the last failed query of that system (0 = immediate)",
		"detector_settle_s = time from heal until no false suspicion remains open",
		"suspicion columns aggregate the shared membership layer across every system")

	for _, dur := range p.PartitionDurations {
		fr, dr, err := partitionPoint(p, dur)
		if err != nil {
			return nil, err
		}
		failTbl.AddRow(fr...)
		detTbl.AddRow(dr...)
	}

	flashTbl, err := flashCrowd(p)
	if err != nil {
		return nil, err
	}
	hopsTbl, err := recordHops(p)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{failTbl, detTbl, flashTbl, hopsTbl}, nil
}

// partitionPoint runs one healing-partition trajectory: every registered
// system over one scheduler, one fault plane and one shared membership
// layer.
func partitionPoint(p Params, dur float64) (failRow, detRow []float64, err error) {
	schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
	complete := p.N == p.D*(1<<uint(p.D))
	opts := systemtest.Options{D: p.D, Bits: p.Bits, CompleteLORM: complete}
	if p.RandomSuccessors {
		opts.FingerRng = workload.Split(p.Seed, 950)
	}
	dep, err := systemtest.Build(schema, p.N, opts)
	if err != nil {
		return nil, nil, err
	}
	gen := workload.NewGenerator(schema, p.Alpha)
	for _, s := range dep.Systems() {
		attachTrace(p, s)
	}
	for _, in := range gen.Announcements(workload.Split(p.Seed, 0), p.K) {
		if err := dep.RegisterEverywhere(in); err != nil {
			return nil, nil, err
		}
	}
	systems, err := dynamicSystems(dep)
	if err != nil {
		return nil, nil, err
	}

	// One physical network: each overlay consults the same fault plane, and
	// the membership layer gossips through it.
	var sched sim.Scheduler
	plane := netfault.NewPlane(p.Seed)
	plane.SetLogger(p.Logger)
	for _, sys := range systems {
		sys.(discovery.NetAware).SetReachability(plane)
	}
	svc, err := membership.New(membership.Config{
		ConfirmAfter: p.MembershipConfirmAfter,
		Rng:          workload.Split(p.Seed, 910),
		Net:          plane,
		Logger:       p.Logger,
	})
	if err != nil {
		return nil, nil, err
	}
	addrs := systemtest.Addresses(p.N)
	svc.Bootstrap(addrs)
	svc.Start(&sched)

	// Detector-mediated failure handling: the overlays learn about a crash
	// only when the membership layer confirms it.
	lost := 0
	svc.OnConfirm(func(addr string) {
		for i, sys := range systems {
			_, l, aerr := faults.Apply(sys, faults.Crash, addr)
			if aerr == nil && i == 0 {
				lost += l // count the loss once, on LORM (repaired below)
			}
		}
		dep.LORM.Repair()
	})
	if p.PartitionCrashRate > 0 {
		plan, perr := faults.New(faults.Config{
			Rate:          p.PartitionCrashRate,
			CrashFraction: 1,
			Rng:           workload.Split(p.Seed, 920),
		})
		if perr != nil {
			return nil, nil, perr
		}
		crng := workload.Split(p.Seed, 930)
		var next func(ev faults.Event)
		next = func(ev faults.Event) {
			if members := svc.Members(); len(members) > 1 {
				svc.Crash(members[crng.Intn(len(members))])
			}
			nev := plan.Next()
			sched.After(nev.After, func() { next(nev) })
		}
		ev := plan.Next()
		sched.After(ev.After, func() { next(ev) })
	}

	// Periodic stabilization, as in the crash experiment. Maintenance
	// deliberately ignores the plane (local repair converges after heal).
	var maintain func()
	maintain = func() {
		for _, sys := range systems {
			sys.Maintain()
		}
		sched.After(5, maintain)
	}
	sched.After(5, maintain)

	healAt := p.PartitionAt + dur
	horizon := healAt + partitionSettle
	k := int(float64(p.N) * p.PartitionFraction)
	if k < 1 {
		k = 1
	}
	minority := append([]string(nil), addrs[:k]...)
	if complete {
		// A complete LORM population has its own cyc-… address space; the
		// same machines must land on the minority side there too, so the cut
		// severs the same fraction of every overlay.
		lormNodes := dep.LORM.Overlay().Nodes()
		lk := int(float64(len(lormNodes)) * p.PartitionFraction)
		for _, n := range lormNodes[:lk] {
			minority = append(minority, n.Addr)
		}
	}
	sched.At(p.PartitionAt, func() {
		if err := plane.StartPartition("cut", minority); err != nil {
			panic(err) // single named set on a fresh plane cannot collide
		}
	})
	sched.At(healAt, func() { plane.Heal("cut") })

	// Detector settle: first post-heal second with no open false suspicion.
	detectorSettle := horizon - healAt
	settled := false
	for t := healAt + 0.5; t < horizon; t++ {
		at := t
		sched.At(at, func() {
			if !settled && svc.OpenFalseSuspicions() == 0 {
				settled = true
				detectorSettle = at - healAt
			}
		})
	}

	type phaseCount struct {
		checks, fails [3]int // pre, during, post
		lastPostFail  float64
	}
	counts := make([]phaseCount, len(systems))
	qrate := float64(p.ChurnQueries) / horizon
	for si, sys := range systems {
		si, sys := si, sys
		qrng := workload.Split(p.Seed, 800+si)
		for i := 0; i < p.ChurnQueries; i++ {
			at := float64(i) / qrate
			q := gen.RangeQuery(qrng, Fig6Attrs, 0.5, fmt.Sprintf("part-req-%05d", i))
			sched.At(at, func() {
				phase := 0
				switch {
				case at >= healAt:
					phase = 2
				case at >= p.PartitionAt:
					phase = 1
				}
				failed := false
				res, qerr := sys.Discover(q)
				if qerr != nil {
					failed = true
				} else if want, oerr := dep.Oracle.Discover(q); oerr != nil || !sameOwners(res.Owners, want.Owners) {
					failed = true
				}
				c := &counts[si]
				c.checks[phase]++
				if failed {
					c.fails[phase]++
					if phase == 2 {
						c.lastPostFail = at
					}
				}
				if plane.PartitionActive() {
					netfault.CountWindowQuery(failed)
				}
			})
		}
	}
	sched.RunUntil(horizon + 1)

	rate := func(c phaseCount, phase int) float64 {
		if c.checks[phase] == 0 {
			return 0
		}
		return float64(c.fails[phase]) / float64(c.checks[phase])
	}
	failRow = []float64{dur}
	detRow = []float64{dur}
	for si := range systems {
		failRow = append(failRow, rate(counts[si], 1), rate(counts[si], 2))
		reconv := 0.0
		if counts[si].lastPostFail > 0 {
			reconv = counts[si].lastPostFail - healAt
		}
		detRow = append(detRow, reconv)
	}
	st := svc.Stats()
	detRow = append(detRow, detectorSettle,
		float64(st.Suspicions), float64(st.FalseSuspicions), float64(st.Cleared),
		float64(st.Confirms), float64(lost))
	return failRow, detRow, nil
}

// flashCrowd sweeps JoinBursts: a burst of simultaneous joins against a
// deployment with free Cycloid slots, measuring post-burst query failures
// and how widely gossip has spread the newcomers by the end of the run.
func flashCrowd(p Params) (*stats.Table, error) {
	n := p.N
	if len(p.LoadSizes) > 0 {
		n = p.LoadSizes[0] // non-complete: the Cycloid keeps free slots
	}
	flashCols := []string{"burst"}
	for _, name := range systemNames() {
		flashCols = append(flashCols, name+"_fail")
	}
	flashCols = append(flashCols, "newcomer_known_frac")
	tbl := stats.NewTable("Flash crowd: query-failure rate after a simultaneous join burst",
		flashCols...)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("n=%d before the burst at t=%g, %d queries per system over %g virtual seconds",
			n, flashAt, p.ChurnQueries, flashHorizon),
		"fail = post-burst failure rate (error or oracle mismatch); joins must not disturb correctness",
		"newcomer_known_frac = fraction of incumbents holding a given newcomer in their gossip cache at the end")

	for bi, burst := range p.JoinBursts {
		schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
		opts := systemtest.Options{D: p.D, Bits: p.Bits}
		if p.RandomSuccessors {
			opts.FingerRng = workload.Split(p.Seed, 960+bi)
		}
		dep, err := systemtest.Build(schema, n, opts)
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(schema, p.Alpha)
		for _, s := range dep.Systems() {
			attachTrace(p, s)
		}
		for _, in := range gen.Announcements(workload.Split(p.Seed, 0), p.K) {
			if err := dep.RegisterEverywhere(in); err != nil {
				return nil, err
			}
		}
		systems, err := dynamicSystems(dep)
		if err != nil {
			return nil, err
		}

		var sched sim.Scheduler
		svc, err := membership.New(membership.Config{
			ConfirmAfter: p.MembershipConfirmAfter,
			Rng:          workload.Split(p.Seed, 940+bi),
			Logger:       p.Logger,
		})
		if err != nil {
			return nil, err
		}
		svc.Bootstrap(systemtest.Addresses(n))
		svc.Start(&sched)

		newcomers := make([]string, burst)
		for j := range newcomers {
			newcomers[j] = fmt.Sprintf("flash-%04d", j)
		}
		sched.At(flashAt, func() {
			for _, addr := range newcomers {
				for _, sys := range systems {
					if err := sys.AddNode(addr); err != nil {
						panic(fmt.Sprintf("flash join %s into %s: %v", addr, sys.Name(), err))
					}
				}
				svc.Join(addr)
			}
		})
		var maintain func()
		maintain = func() {
			for _, sys := range systems {
				sys.Maintain()
			}
			sched.After(5, maintain)
		}
		sched.After(5, maintain)

		fails := make([]int, len(systems))
		checks := make([]int, len(systems))
		qrate := float64(p.ChurnQueries) / flashHorizon
		for si, sys := range systems {
			si, sys := si, sys
			qrng := workload.Split(p.Seed, 850+10*bi+si)
			for i := 0; i < p.ChurnQueries; i++ {
				at := float64(i) / qrate
				if at < flashAt {
					continue // only the post-burst stream is scored
				}
				q := gen.RangeQuery(qrng, Fig6Attrs, 0.5, fmt.Sprintf("flash-req-%05d", i))
				sched.At(at, func() {
					checks[si]++
					res, qerr := sys.Discover(q)
					if qerr != nil {
						fails[si]++
						return
					}
					want, oerr := dep.Oracle.Discover(q)
					if oerr != nil || !sameOwners(res.Owners, want.Owners) {
						fails[si]++
					}
				})
			}
		}
		sched.RunUntil(flashHorizon + 1)

		known := 0.0
		incumbents := n - 1 + burst // everyone but the newcomer itself
		for _, addr := range newcomers {
			known += float64(svc.KnownBy(addr)) / float64(incumbents)
		}
		if burst > 0 {
			known /= float64(burst)
		}
		row := []float64{float64(burst)}
		for si := range systems {
			r := 0.0
			if checks[si] > 0 {
				r = float64(fails[si]) / float64(checks[si])
			}
			row = append(row, r)
		}
		tbl.AddRow(append(row, known)...)
	}
	return tbl, nil
}

// recordHops compares deterministic against ReCord-style randomized
// fingers on the two Chord-based systems over an identical exact-match
// query set. Randomized fingers trade a slightly longer average route for
// path diversity; the table quantifies that cost.
func recordHops(p Params) (*stats.Table, error) {
	tbl := stats.NewTable("ReCord fingers: exact-match hops, deterministic vs randomized",
		"randomized", "sword_hops", "maan_hops", "sword_p99", "maan_p99")
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("n=%d, %d single-attribute exact queries per setting (identical query set)",
			p.N, p.Requesters*p.QueriesPerRequester),
		"randomized: each finger drawn uniformly from its interval [id+2^i, id+2^(i+1))")

	schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
	gen := workload.NewGenerator(schema, p.Alpha)
	infos := gen.Announcements(workload.Split(p.Seed, 0), p.K)
	qrng := workload.Split(p.Seed, 970)
	queries := make([]resource.Query, 0, p.Requesters*p.QueriesPerRequester)
	for r := 0; r < p.Requesters; r++ {
		requester := fmt.Sprintf("requester-%03d", r)
		for j := 0; j < p.QueriesPerRequester; j++ {
			queries = append(queries, gen.ExactQuery(qrng, 1, requester))
		}
	}

	for _, randomized := range []bool{false, true} {
		swCfg := sword.Config{Bits: p.Bits, Schema: schema}
		maCfg := maan.Config{Bits: p.Bits, Schema: schema}
		if randomized {
			swCfg.FingerRng = workload.Split(p.Seed, 971)
			maCfg.FingerRng = workload.Split(p.Seed, 972)
		}
		sw, err := sword.New(swCfg)
		if err != nil {
			return nil, err
		}
		ma, err := maan.New(maCfg)
		if err != nil {
			return nil, err
		}
		addrs := systemtest.Addresses(p.N)
		if err := sw.AddNodes(addrs); err != nil {
			return nil, err
		}
		if err := ma.AddNodes(addrs); err != nil {
			return nil, err
		}
		attachTrace(p, sw)
		attachTrace(p, ma)
		for _, in := range infos {
			if _, err := sw.Register(in); err != nil {
				return nil, err
			}
			if _, err := ma.Register(in); err != nil {
				return nil, err
			}
		}
		swHops, _, err := runQueries(sw, queries, p.Workers)
		if err != nil {
			return nil, err
		}
		maHops, _, err := runQueries(ma, queries, p.Workers)
		if err != nil {
			return nil, err
		}
		flag := 0.0
		if randomized {
			flag = 1
		}
		tbl.AddRow(flag, swHops.Summary().Mean, maHops.Summary().Mean,
			swHops.Quantile(0.99), maHops.Quantile(0.99))
	}
	return tbl, nil
}
