package experiments

import (
	"reflect"
	"testing"
)

// The load experiment's headline property at test scale: SWORD's max/mean
// stored-entry load factor strictly exceeds every value-spreading system
// at every swept node count, and the rebalance pass strictly improves
// LORM/Mercury/MAAN while never improving SWORD past them.
func TestLoadBalanceOrdering(t *testing.T) {
	p := Quick()
	p.RangeQueries = 30
	tables, err := LoadBalance(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 {
		t.Fatalf("LoadBalance returned %d tables, want 8", len(tables))
	}
	factor := tables[0]
	if got := len(factor.Rows); got != len(p.LoadSizes) {
		t.Fatalf("load-factor table has %d rows, want %d", got, len(p.LoadSizes))
	}
	col := func(name string) []float64 {
		c := factor.Column(name)
		if c == nil {
			t.Fatalf("load-factor table missing column %s", name)
		}
		return c
	}
	sword, lorm, mercury, maan := col("sword"), col("lorm"), col("mercury"), col("maan")
	for i := range factor.Rows {
		n := factor.Rows[i][0]
		for name, c := range map[string][]float64{"lorm": lorm, "mercury": mercury, "maan": maan} {
			if sword[i] <= c[i] {
				t.Errorf("n=%0.f: sword load factor %0.3f does not exceed %s (%0.3f)", n, sword[i], name, c[i])
			}
		}
		for _, name := range []string{"lorm", "mercury", "maan"} {
			pre, post := col(name)[i], col(name+"_rebal")[i]
			if post >= pre {
				t.Errorf("n=%0.f: %s rebalance did not improve max/mean: %0.3f -> %0.3f", n, name, pre, post)
			}
		}
		if pre, post := sword[i], col("sword_rebal")[i]; post > pre {
			t.Errorf("n=%0.f: sword max/mean grew under rebalance: %0.3f -> %0.3f", n, pre, post)
		}
	}

	migrations := tables[3]
	for i, row := range migrations.Rows {
		moved := false
		for _, v := range row[1:] {
			if v > 0 {
				moved = true
			}
		}
		if !moved {
			t.Errorf("row %d of the migration table shows no migrations anywhere", i)
		}
	}

	// The whole experiment must be deterministic: a second run reproduces
	// every table cell bit for bit.
	again, err := LoadBalance(p, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tables {
		if !reflect.DeepEqual(tables[i].Rows, again[i].Rows) {
			t.Errorf("table %q is not deterministic:\n%v\nvs\n%v", tables[i].Title, tables[i].Rows, again[i].Rows)
		}
	}
}

func TestLoadBalanceNoRebalance(t *testing.T) {
	p := Quick()
	p.LoadSizes = []int{96}
	p.LoadSkews = []float64{1.5}
	p.RangeQueries = 20
	tables, err := LoadBalance(p, false)
	if err != nil {
		t.Fatal(err)
	}
	// factor, gini, visits, skew factor, skew gini — no migration tables.
	if len(tables) != 5 {
		t.Fatalf("LoadBalance(rebalance=false) returned %d tables, want 5", len(tables))
	}
	for _, tbl := range tables {
		for _, c := range tbl.Columns {
			if len(c) > 6 && c[len(c)-6:] == "_rebal" {
				t.Errorf("table %q has rebalance column %s without a rebalance pass", tbl.Title, c)
			}
		}
	}
}

func TestLoadBalanceRejectsDegenerateSizes(t *testing.T) {
	for _, n := range []int{64, 384} { // cluster size and complete capacity for d=6
		p := Quick()
		p.LoadSizes = []int{n}
		if _, err := LoadBalance(p, true); err == nil {
			t.Errorf("LoadBalance accepted degenerate size %d for d=%d", n, p.D)
		}
	}
}
