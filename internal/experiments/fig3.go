package experiments

import (
	"fmt"

	"lorm/internal/analysis"
	"lorm/internal/art"
	"lorm/internal/core"
	"lorm/internal/mercury"
	"lorm/internal/resource"
	"lorm/internal/stats"
	"lorm/internal/systemtest"
)

// Fig3a regenerates Figure 3(a): the number of outlinks maintained per
// node versus network size, for Mercury (m hubs × log n fingers each),
// LORM (Cycloid's constant 7), and the paper's "Analysis>LORM" curve
// (Mercury's measured count divided by m, the bound of Theorem 4.1).
//
// Network sizes are the complete Cycloid sizes d·2^d for each d in
// p.Sizes. Mercury's per-node total is measured over HubSample physically
// built hubs and scaled by m/HubSample — per-hub routing state is i.i.d.
// across hubs, so the scaling preserves the expectation exactly.
func Fig3a(p Params) (*stats.Table, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Figure 3(a): outlinks per node vs network size",
		"n", "mercury", "analysis_gt_lorm", "lorm", "art")
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("m=%d attributes; Mercury measured over %d sample hubs and scaled", p.M, hubSample(p)),
		"analysis_gt_lorm = Mercury / m (Theorem 4.1)",
		"art = live trie-sibling representatives per node (extension; grows with the trie arity, not log n)")

	for _, d := range p.Sizes {
		n := d * (1 << uint(d))

		// LORM: complete Cycloid of dimension d.
		lorm, err := core.New(core.Config{D: d, Schema: resource.SyntheticSchema(1, p.Span)})
		if err != nil {
			return nil, err
		}
		if err := lorm.PopulateComplete(); err != nil {
			return nil, err
		}
		lormAvg := stats.SummarizeInts(lorm.OutlinkCounts()).Mean

		// Mercury: hubSample hubs over the same node count, scaled to m.
		hs := hubSample(p)
		merc, err := mercury.New(mercury.Config{
			Bits:   p.Bits,
			Schema: resource.SyntheticSchema(hs, p.Span),
		})
		if err != nil {
			return nil, err
		}
		if err := merc.AddNodes(systemtest.Addresses(n)); err != nil {
			return nil, err
		}
		scale := float64(p.M) / float64(hs)
		mercAvg := stats.SummarizeInts(merc.OutlinkCounts()).Mean * scale

		// ART: trie-sibling representatives over the same node count.
		trie, err := art.New(art.Config{Bits: p.Bits, Schema: resource.SyntheticSchema(1, p.Span)})
		if err != nil {
			return nil, err
		}
		if err := trie.AddNodes(systemtest.Addresses(n)); err != nil {
			return nil, err
		}
		artAvg := stats.SummarizeInts(trie.OutlinkCounts()).Mean

		ap := analysis.Params{N: n, M: p.M, K: p.K, D: d}
		tbl.AddRow(float64(n), mercAvg, analysis.AnalysisGreaterLORMOutlinks(ap, mercAvg), lormAvg, artAvg)
	}
	return tbl, nil
}

func hubSample(p Params) int {
	if p.HubSample <= 0 || p.HubSample > p.M {
		return p.M
	}
	return p.HubSample
}

// directoryRow condenses one system's directory-size distribution into the
// triple the paper plots: 1st percentile, average, 99th percentile.
type directoryRow struct {
	P01, Avg, P99 float64
}

func summarizeDirs(sizes []int) directoryRow {
	s := stats.SummarizeInts(sizes)
	return directoryRow{P01: s.P01, Avg: s.Mean, P99: s.P99}
}

// Fig3bcd regenerates Figures 3(b), 3(c) and 3(d) from one populated
// environment: per-node directory-size distributions (1st percentile,
// average, 99th percentile) of MAAN, SWORD and Mercury, each against LORM
// and against the analysis curves of Theorems 4.2–4.5. A fourth table —
// "Figure 3(e)", an extension beyond the paper — gives ART the same
// treatment: its value buckets store each piece once, so its total matches
// LORM's while the sector mapping spreads values like Mercury does.
//
// Each table has one row per statistic; the `stat` column encodes it:
// 1 = 1st percentile, 0 = average, 99 = 99th percentile.
func Fig3bcd(env *Env) (b, c, d, e *stats.Table) {
	ap := env.AnalysisParams()
	byName := env.systemsByName()
	lorm := summarizeDirs(byName["lorm"].DirectorySizes())
	maan := summarizeDirs(byName["maan"].DirectorySizes())
	sword := summarizeDirs(byName["sword"].DirectorySizes())
	merc := summarizeDirs(byName["mercury"].DirectorySizes())
	trie := summarizeDirs(byName["art"].DirectorySizes())

	note := "rows: stat 1 = 1st percentile, 0 = average, 99 = 99th percentile"

	// Figure 3(b): MAAN vs LORM. Analysis: average = MAAN/2 (Thm 4.2),
	// percentiles = MAAN / d(1+m/n) (Thm 4.3).
	b = stats.NewTable("Figure 3(b): directory size per node, MAAN vs LORM",
		"stat", "maan", "lorm", "analysis_lorm")
	b.Notes = append(b.Notes, note,
		fmt.Sprintf("Thm 4.3 factor d(1+m/n) = %.2f; Thm 4.2 factor 2", analysis.Theorem43DirectoryRatioMAAN(ap)))
	r43 := analysis.Theorem43DirectoryRatioMAAN(ap)
	b.AddRow(1, maan.P01, lorm.P01, maan.P01/r43)
	b.AddRow(0, maan.Avg, lorm.Avg, maan.Avg/analysis.Theorem42TotalInfoRatio(ap))
	b.AddRow(99, maan.P99, lorm.P99, maan.P99/r43)

	// Figure 3(c): SWORD vs LORM. Analysis: average = SWORD (same total,
	// Thm 4.2), percentiles = SWORD / d (Thm 4.4).
	c = stats.NewTable("Figure 3(c): directory size per node, SWORD vs LORM",
		"stat", "sword", "lorm", "analysis_lorm")
	c.Notes = append(c.Notes, note,
		fmt.Sprintf("Thm 4.4 factor d = %.0f", analysis.Theorem44DirectoryRatioSWORD(ap)))
	r44 := analysis.Theorem44DirectoryRatioSWORD(ap)
	c.AddRow(1, sword.P01, lorm.P01, sword.P01/r44)
	c.AddRow(0, sword.Avg, lorm.Avg, sword.Avg)
	c.AddRow(99, sword.P99, lorm.P99, sword.P99/r44)

	// Figure 3(d): Mercury vs LORM. Analysis: average = Mercury (same
	// total), 99th percentile = Mercury × n/(dm), 1st = Mercury ÷ n/(dm)
	// (Thm 4.5: Mercury is more balanced by that factor).
	d = stats.NewTable("Figure 3(d): directory size per node, Mercury vs LORM",
		"stat", "mercury", "lorm", "analysis_lorm")
	d.Notes = append(d.Notes, note,
		fmt.Sprintf("Thm 4.5 factor n/(dm) = %.2f", analysis.Theorem45BalanceRatioMercury(ap)))
	r45 := analysis.Theorem45BalanceRatioMercury(ap)
	d.AddRow(1, merc.P01, lorm.P01, merc.P01/r45)
	d.AddRow(0, merc.Avg, lorm.Avg, merc.Avg)
	d.AddRow(99, merc.P99, lorm.P99, merc.P99*r45)

	// Figure 3(e): ART vs LORM. Single registration means the averages
	// coincide (the Theorem 4.2 total is mk for both); no paper curve
	// exists for the percentiles, so the table carries only measurements.
	e = stats.NewTable("Figure 3(e): directory size per node, ART vs LORM (extension)",
		"stat", "art", "lorm")
	e.Notes = append(e.Notes, note,
		"art stores each piece once in its value bucket: total = mk, like lorm")
	e.AddRow(1, trie.P01, lorm.P01)
	e.AddRow(0, trie.Avg, lorm.Avg)
	e.AddRow(99, trie.P99, lorm.P99)
	return b, c, d, e
}
