package experiments

import (
	"fmt"

	"lorm/internal/analysis"
	"lorm/internal/resource"
	"lorm/internal/stats"
	"lorm/internal/workload"
)

// TheoremCheck condenses the whole of Section IV into one table: for every
// quantitative theorem it reports the paper's predicted ratio (or bound)
// and the ratio measured on the populated environment. `kind` encodes how
// to read a row: 0 = measured should approximate predicted, 1 = measured
// must be at least predicted (a lower bound).
func TheoremCheck(env *Env) (*stats.Table, error) {
	p := env.P
	ap := env.AnalysisParams()
	byName := env.systemsByName()

	tbl := stats.NewTable("Theorems 4.1-4.10: predicted vs measured",
		"theorem", "kind", "predicted", "measured")
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("n=%d m=%d k=%d d=%d; kind 0 = approximate equality, 1 = lower bound", p.N, p.M, p.K, p.D),
		"4.1 outlink ratio | 4.2 info volume | 4.3/4.4/4.5 p99 directory ratios",
		"4.7/4.8 hop ratios | 4.9 visited-node savings | 4.10 worst-case bound")

	// Structure overhead (4.1): Mercury outlinks / LORM outlinks ≥ m.
	mercOut := stats.SummarizeInts(byName["mercury"].OutlinkCounts()).Mean
	lormOut := stats.SummarizeInts(byName["lorm"].OutlinkCounts()).Mean
	tbl.AddRow(4.1, 1, float64(p.M), mercOut/lormOut)

	// Information volume (4.2): MAAN total = 2 × LORM total.
	total := func(name string) float64 {
		sum := 0
		for _, sz := range byName[name].DirectorySizes() {
			sum += sz
		}
		return float64(sum)
	}
	tbl.AddRow(4.2, 0, analysis.Theorem42TotalInfoRatio(ap), total("maan")/total("lorm"))

	// Directory balance (4.3, 4.4, 4.5) on 99th percentiles.
	p99 := func(name string) float64 {
		return stats.SummarizeInts(byName[name].DirectorySizes()).P99
	}
	lormP99 := p99("lorm")
	tbl.AddRow(4.3, 0, analysis.Theorem43DirectoryRatioMAAN(ap), p99("maan")/lormP99)
	tbl.AddRow(4.4, 0, analysis.Theorem44DirectoryRatioSWORD(ap), p99("sword")/lormP99)
	tbl.AddRow(4.5, 0, analysis.Theorem45BalanceRatioMercury(ap), lormP99/p99("mercury"))

	// Hop ratios (4.7, 4.8) on single-attribute non-range queries.
	qrng := workload.Split(p.Seed, 900)
	nq := p.Requesters * p.QueriesPerRequester
	exact := make([]resource.Query, nq)
	for i := range exact {
		exact[i] = env.Gen.ExactQuery(qrng, 1, fmt.Sprintf("r%d", i))
	}
	hops := map[string]float64{}
	for _, name := range []string{"maan", "lorm", "mercury"} {
		h, _, err := runQueries(byName[name], exact, p.Workers)
		if err != nil {
			return nil, err
		}
		hops[name] = h.Summary().Mean
	}
	tbl.AddRow(4.7, 0, analysis.Theorem47ContactedRatioMAANvsLORM(ap), hops["maan"]/hops["lorm"])
	tbl.AddRow(4.8, 0, analysis.Theorem48ContactedRatioMAANvsChordSystems(ap), hops["maan"]/hops["mercury"])

	// Visited-node savings (4.9) on single-attribute range queries.
	ranged := make([]resource.Query, p.RangeQueries)
	for i := range ranged {
		ranged[i] = env.Gen.RangeQuery(qrng, 1, 0.5, fmt.Sprintf("rr%d", i))
	}
	visited := map[string]float64{}
	for _, name := range []string{"mercury", "lorm", "sword"} {
		_, v, err := runQueries(byName[name], ranged, p.Workers)
		if err != nil {
			return nil, err
		}
		visited[name] = v.Summary().Mean
	}
	// LORM saves at least m(n-d)/4 visited nodes vs system-wide probing.
	// Theorem constants assume exactly-quarter ranges; clamping makes the
	// measured saving land slightly below, so it is reported as kind 0.
	tbl.AddRow(4.91, 0, analysis.Theorem49SavingsVsSystemWide(ap, 1), visited["mercury"]-visited["lorm"])
	tbl.AddRow(4.92, 0, analysis.Theorem49SavingsSWORDvsLORM(ap, 1), visited["lorm"]-visited["sword"])

	// Worst-case bound (4.10): LORM's contacted nodes for a range query
	// never exceed m·d routing plus the d-node cluster — compare the worst
	// measured total against Mercury's worst case to show the mn margin.
	tbl.AddRow(4.10, 1, analysis.Theorem410WorstCaseSavings(ap, 1),
		analysis.WorstCaseRangeContacted(ap, "mercury", 1)-analysis.WorstCaseRangeContacted(ap, "lorm", 1))
	return tbl, nil
}

// ARTSubLogAssert is the ART extension's theorem-style guard over a
// measured ARTSweep table: at the largest swept size ART's mean hop count
// must be strictly below every O(log n) system's, and its growth across
// the sweep (last minus first point) strictly smaller than each of theirs.
// Together the two checks reject both a mislabeled constant offset and a
// curve that merely starts low but scales like the others.
func ARTSubLogAssert(tbl *stats.Table) error {
	sizes := tbl.Column("n")
	if len(sizes) < 2 {
		return fmt.Errorf("experiments: ART sweep needs at least 2 sizes, got %d", len(sizes))
	}
	art := tbl.Column("art")
	if len(art) != len(sizes) {
		return fmt.Errorf("experiments: ART sweep missing art column")
	}
	last := len(sizes) - 1
	for _, name := range systemNames() {
		if name == "art" {
			continue
		}
		sys := tbl.Column(name)
		if len(sys) != len(sizes) {
			return fmt.Errorf("experiments: ART sweep missing %s column", name)
		}
		if !(art[last] < sys[last]) {
			return fmt.Errorf("experiments: ART hops %.2f not below %s hops %.2f at n=%.0f",
				art[last], name, sys[last], sizes[last])
		}
		if !(art[last]-art[0] < sys[last]-sys[0]) {
			return fmt.Errorf("experiments: ART hop growth %.2f not below %s growth %.2f over n=%.0f..%.0f",
				art[last]-art[0], name, sys[last]-sys[0], sizes[0], sizes[last])
		}
	}
	return nil
}
