package experiments

import (
	"fmt"

	"lorm/internal/analysis"
	"lorm/internal/core"
	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/systemtest"
	"lorm/internal/workload"
)

// Env is a fully constructed and populated evaluation environment: the
// four systems over identical node populations with the synthetic
// announcement workload registered everywhere. The static-figure drivers
// (3(b)–(d), 4, 5) share one Env; Figure 3(a) and the churn sweep build
// their own deployments.
type Env struct {
	P      Params
	Schema *resource.Schema
	Dep    *systemtest.Deployment
	Gen    *workload.Generator
}

// NewEnv builds the deployment and registers M×K announcement pieces in
// every system.
func NewEnv(p Params) (*Env, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Pareto-aware schema: every system's locality-preserving hash becomes
	// quantile-based, the "uniform locality preserving hashing" of MAAN [3]
	// that keeps value-keyed storage balanced under the skewed workload.
	schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
	complete := p.N == p.D*(1<<uint(p.D))
	dep, err := systemtest.Build(schema, p.N, systemtest.Options{
		D: p.D, Bits: p.Bits, CompleteLORM: complete,
	})
	if err != nil {
		return nil, err
	}
	env := &Env{P: p, Schema: schema, Dep: dep, Gen: workload.NewGenerator(schema, p.Alpha)}
	for _, s := range dep.Systems() {
		attachTrace(p, s)
	}
	if err := env.registerAll(); err != nil {
		return nil, err
	}
	return env, nil
}

// attachTrace hooks the run-wide trace and metrics observers (if any) into
// a system's routing fabric. Drivers that construct systems outside NewEnv
// call it themselves so -trace and -metrics-out cover every deployment of a
// run.
func attachTrace(p Params, s discovery.System) {
	if p.TraceObserver == nil && p.MetricsObserver == nil && p.SpanObserver == nil {
		return
	}
	inst, ok := s.(routing.Instrumented)
	if !ok {
		return
	}
	if p.TraceObserver != nil {
		inst.RoutingFabric().Observe(p.TraceObserver)
	}
	if p.MetricsObserver != nil {
		inst.RoutingFabric().Observe(p.MetricsObserver)
	}
	if p.SpanObserver != nil {
		inst.RoutingFabric().Observe(p.SpanObserver)
	}
}

// registerAll announces the workload in every system, fanning out over the
// worker pool (registrations are independent; each system's internals are
// concurrency-safe).
func (e *Env) registerAll() error {
	infos := e.Gen.Announcements(workload.Split(e.P.Seed, 0), e.P.K)
	systems := e.Dep.Systems()
	return forEachParallel(infos, e.P.Workers, func(in resource.Info) error {
		for _, s := range systems {
			if _, err := s.Register(in); err != nil {
				return fmt.Errorf("%s: %w", s.Name(), err)
			}
		}
		return nil
	})
}

// AnalysisParams translates the experiment parameters into the closed-form
// model's parameters.
func (e *Env) AnalysisParams() analysis.Params {
	return analysis.Params{N: e.P.N, M: e.P.M, K: e.P.K, D: e.P.D}
}

// systemsByName returns the systems keyed by name for table assembly.
func (e *Env) systemsByName() map[string]discovery.System {
	out := make(map[string]discovery.System)
	for _, s := range e.Dep.Systems() {
		out[s.Name()] = s
	}
	return out
}

// systemNames is the deployment registry's name list — the measured-column
// order of every multi-system table, so a system added to the registry
// shows up in every sweep without touching the drivers.
func systemNames() []string { return systemtest.Names() }

// dynamicSystems asserts every deployed system supports churn and returns
// them in registry order.
func dynamicSystems(dep *systemtest.Deployment) ([]discovery.Dynamic, error) {
	out := make([]discovery.Dynamic, 0, len(dep.Systems()))
	for _, s := range dep.Systems() {
		dyn, ok := s.(discovery.Dynamic)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support churn", s.Name())
		}
		out = append(out, dyn)
	}
	return out, nil
}

// newLORM builds a standalone LORM system for the single-system ablation
// runs, complete when p.N equals the Cycloid capacity.
func newLORM(p Params, schema *resource.Schema) (*core.System, error) {
	sys, err := core.New(core.Config{D: p.D, Schema: schema})
	if err != nil {
		return nil, err
	}
	attachTrace(p, sys)
	if p.N == p.D*(1<<uint(p.D)) {
		return sys, sys.PopulateComplete()
	}
	return sys, sys.AddNodes(systemtest.Addresses(p.N))
}
