package experiments

import (
	"math"
	"testing"

	"lorm/internal/stats"
)

// quickEnv is shared across the static-figure tests (building it is the
// expensive part).
func quickEnv(t testing.TB) *Env {
	t.Helper()
	env, err := NewEnv(Quick())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{D: 1, N: 100, M: 1, K: 1, MaxAttrs: 1},
		{D: 6, N: 1, M: 1, K: 1, MaxAttrs: 1},
		{D: 6, N: 100, M: 0, K: 1, MaxAttrs: 1},
		{D: 6, N: 100, M: 1, K: 0, MaxAttrs: 1},
		{D: 6, N: 100, M: 1, K: 1, MaxAttrs: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	for _, p := range []Params{Paper(), Standard(), Quick()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestPaperPresetMatchesSectionV(t *testing.T) {
	p := Paper()
	if p.D != 8 || p.N != 2048 || p.M != 200 || p.K != 500 {
		t.Fatalf("paper preset diverges from Section V: %+v", p)
	}
	if p.Requesters != 100 || p.QueriesPerRequester != 10 || p.RangeQueries != 1000 {
		t.Fatalf("paper query counts diverge: %+v", p)
	}
	if len(p.ChurnRates) != 5 || p.ChurnRates[0] != 0.1 || p.ChurnRates[4] != 0.5 {
		t.Fatalf("paper churn rates diverge: %v", p.ChurnRates)
	}
}

// Figure 3(a): Mercury's outlinks must exceed "Analysis>LORM" (Mercury/m),
// which in turn must be at least LORM's — the inequality of Theorem 4.1.
func TestFig3aShape(t *testing.T) {
	p := Quick()
	tbl, err := Fig3a(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(p.Sizes) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(p.Sizes))
	}
	mercury := tbl.Column("mercury")
	anal := tbl.Column("analysis_gt_lorm")
	lorm := tbl.Column("lorm")
	for i := range tbl.Rows {
		if !(mercury[i] > anal[i]) {
			t.Errorf("row %d: mercury %v not above analysis %v", i, mercury[i], anal[i])
		}
		if !(anal[i] >= lorm[i]*0.8) {
			t.Errorf("row %d: analysis>lorm %v below LORM %v", i, anal[i], lorm[i])
		}
		if lorm[i] > 7 {
			t.Errorf("row %d: LORM outlinks %v exceed the constant 7", i, lorm[i])
		}
	}
}

// Figures 3(b)-(d): the load-balance ordering of Theorem 4.6 —
// Mercury ≤ LORM ≤ {SWORD, MAAN} in 99th-percentile directory size — and
// the average-size relations of Theorem 4.2.
func TestFig3bcdShapes(t *testing.T) {
	env := quickEnv(t)
	b, c, d, e := Fig3bcd(env)

	get := func(tbl *stats.Table, col string, stat float64) float64 {
		sc := tbl.Column("stat")
		vals := tbl.Column(col)
		for i, s := range sc {
			if s == stat {
				return vals[i]
			}
		}
		t.Fatalf("stat %v not in table %s", stat, tbl.Title)
		return 0
	}

	// Averages: MAAN = 2× LORM; SWORD = LORM; Mercury = LORM.
	maanAvg, lormAvgB := get(b, "maan", 0), get(b, "lorm", 0)
	if ratio := maanAvg / lormAvgB; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("MAAN/LORM average directory ratio = %.3f, want 2 (Thm 4.2)", ratio)
	}
	swordAvg := get(c, "sword", 0)
	if ratio := swordAvg / lormAvgB; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("SWORD/LORM average ratio = %.3f, want 1", ratio)
	}
	mercAvg := get(d, "mercury", 0)
	if ratio := mercAvg / lormAvgB; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("Mercury/LORM average ratio = %.3f, want 1", ratio)
	}
	artAvg := get(e, "art", 0)
	if ratio := artAvg / lormAvgB; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("ART/LORM average ratio = %.3f, want 1 (single registration)", ratio)
	}

	// 99th percentiles: the attribute-pooling systems blow up.
	lormP99 := get(b, "lorm", 99)
	if maanP99 := get(b, "maan", 99); maanP99 < 2*lormP99 {
		t.Errorf("MAAN p99 %v not well above LORM p99 %v", maanP99, lormP99)
	}
	if swordP99 := get(c, "sword", 99); swordP99 < 2*lormP99 {
		t.Errorf("SWORD p99 %v not well above LORM p99 %v", swordP99, lormP99)
	}
	if mercP99 := get(d, "mercury", 99); mercP99 > lormP99*1.2 {
		t.Errorf("Mercury p99 %v above LORM p99 %v; Mercury should balance better (Thm 4.5)",
			mercP99, lormP99)
	}
}

// Figure 4: hop ordering MAAN > LORM > Mercury ≈ SWORD, growing linearly
// with the attribute count.
func TestFig4Shape(t *testing.T) {
	env := quickEnv(t)
	avg, total, err := Fig4(env)
	if err != nil {
		t.Fatal(err)
	}
	maan, lorm := avg.Column("maan"), avg.Column("lorm")
	mercury, sword := avg.Column("mercury"), avg.Column("sword")
	for i := range avg.Rows {
		if !(maan[i] > lorm[i] && lorm[i] > mercury[i]*0.95) {
			t.Errorf("row %d: ordering broken: maan=%.2f lorm=%.2f mercury=%.2f",
				i, maan[i], lorm[i], mercury[i])
		}
		if diff := mercury[i] - sword[i]; diff > mercury[i]*0.25 || diff < -mercury[i]*0.25 {
			t.Errorf("row %d: mercury %.2f and sword %.2f should be close", i, mercury[i], sword[i])
		}
	}
	// Linear growth: last row ≈ MaxAttrs × first row.
	if grow := maan[len(maan)-1] / maan[0]; grow < float64(env.P.MaxAttrs)*0.7 {
		t.Errorf("MAAN hops grew only %.1f× over %d attributes", grow, env.P.MaxAttrs)
	}
	// Totals are avg × query count.
	nq := float64(env.P.Requesters * env.P.QueriesPerRequester)
	if tot := total.Column("maan")[0]; tot < maan[0]*nq*0.99 || tot > maan[0]*nq*1.01 {
		t.Errorf("total %v inconsistent with avg %v × %v queries", tot, maan[0], nq)
	}
}

// Figure 5: visited-node ordering MAAN ≈ Mercury ≫ LORM > SWORD, and the
// measured values near the Theorem 4.9 closed forms.
func TestFig5Shape(t *testing.T) {
	env := quickEnv(t)
	_, avg, err := Fig5(env)
	if err != nil {
		t.Fatal(err)
	}
	mercury, maan := avg.Column("mercury"), avg.Column("maan")
	lorm, sword := avg.Column("lorm"), avg.Column("sword")
	anaMerc, anaLorm := avg.Column("analysis_mercury"), avg.Column("analysis_lorm")
	for i := range avg.Rows {
		mq := float64(i + 1)
		if !(maan[i] > mercury[i]*0.9 && mercury[i] > lorm[i]*5 && lorm[i] > sword[i]) {
			t.Errorf("row %d: ordering broken: mercury=%.1f maan=%.1f lorm=%.1f sword=%.1f",
				i, mercury[i], maan[i], lorm[i], sword[i])
		}
		if sword[i] != mq {
			t.Errorf("row %d: SWORD visited %v, want exactly %v", i, sword[i], mq)
		}
		// Measured within 2× of the analysis (clamping at domain edges and
		// value skew shift it below the model).
		if mercury[i] > anaMerc[i]*1.2 || mercury[i] < anaMerc[i]*0.4 {
			t.Errorf("row %d: mercury %.1f far from analysis %.1f", i, mercury[i], anaMerc[i])
		}
		if lorm[i] > anaLorm[i]*1.5 || lorm[i] < anaLorm[i]*0.4 {
			t.Errorf("row %d: lorm %.1f far from analysis %.1f", i, lorm[i], anaLorm[i])
		}
	}
}

// Figure 6: zero failures under churn, hop/visited levels flat in R and
// consistent with the static figures.
func TestFig6Shape(t *testing.T) {
	p := Quick()
	hopsTbl, visitedTbl, err := Fig6(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hopsTbl.Rows) != len(p.ChurnRates) {
		t.Fatalf("rows = %d, want %d", len(hopsTbl.Rows), len(p.ChurnRates))
	}
	for _, tbl := range []*stats.Table{hopsTbl, visitedTbl} {
		for _, f := range tbl.Column("failures") {
			if f != 0 {
				t.Fatalf("%s reports %v failures; churn must be lossless", tbl.Title, f)
			}
		}
	}
	// Ordering preserved under churn.
	maan, lorm, mercury := hopsTbl.Column("maan"), hopsTbl.Column("lorm"), hopsTbl.Column("mercury")
	for i := range hopsTbl.Rows {
		if !(maan[i] > lorm[i] && lorm[i] > mercury[i]*0.9) {
			t.Errorf("rate row %d: hop ordering broken: %v %v %v", i, maan[i], lorm[i], mercury[i])
		}
	}
	// Flat in R: max/min within 25%.
	for _, col := range []string{"maan", "lorm", "mercury", "sword"} {
		vals := hopsTbl.Column(col)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo*1.25 {
			t.Errorf("%s hops vary %.2f..%.2f across churn rates; paper reports flat", col, lo, hi)
		}
	}
	vm, vl := visitedTbl.Column("mercury"), visitedTbl.Column("lorm")
	for i := range visitedTbl.Rows {
		if !(vm[i] > vl[i]*5) {
			t.Errorf("rate row %d: visited ordering broken: mercury %v vs lorm %v", i, vm[i], vl[i])
		}
	}
}

// The ART scaling sweep: one row per size, the sub-logarithmic guard
// holding even at quick scale, and the Chord reference column following
// (1/2)·log2 n exactly.
func TestARTSweepSubLog(t *testing.T) {
	p := Quick()
	tbl, err := ARTSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(p.ARTSizes) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(p.ARTSizes))
	}
	if err := ARTSubLogAssert(tbl); err != nil {
		t.Fatal(err)
	}
	ns := tbl.Column("n")
	ref := tbl.Column("analysis_chord")
	for i := range tbl.Rows {
		want := math.Log2(ns[i]) / 2
		if math.Abs(ref[i]-want) > 1e-9 {
			t.Errorf("row %d: analysis_chord %v, want %v", i, ref[i], want)
		}
	}
	// ART's absolute level: bounded by the trie depth even at the smallest
	// size, so the curve starts below the Chord reference's largest value.
	art := tbl.Column("art")
	if art[0] >= ref[len(ref)-1]+1 {
		t.Errorf("art hops at n=%v already %v; expected a flat sub-logarithmic curve", ns[0], art[0])
	}
}

func TestEnvDeterminism(t *testing.T) {
	p := Quick()
	p.M, p.K, p.N = 5, 10, 64 // extra small
	a, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	as := stats.SummarizeInts(a.Dep.LORM.DirectorySizes())
	bs := stats.SummarizeInts(b.Dep.LORM.DirectorySizes())
	if as != bs {
		t.Fatalf("two identically seeded envs differ: %+v vs %+v", as, bs)
	}
}

// The theorem-check table: every approximate-equality row within a loose
// factor, every lower-bound row satisfied.
func TestTheoremCheck(t *testing.T) {
	env := quickEnv(t)
	tbl, err := TheoremCheck(env)
	if err != nil {
		t.Fatal(err)
	}
	thm := tbl.Column("theorem")
	kind := tbl.Column("kind")
	pred := tbl.Column("predicted")
	meas := tbl.Column("measured")
	if len(thm) < 9 {
		t.Fatalf("only %d theorem rows", len(thm))
	}
	for i := range thm {
		switch kind[i] {
		case 1: // lower bound
			if meas[i] < pred[i]*0.95 {
				t.Errorf("theorem %.2f: measured %v below bound %v", thm[i], meas[i], pred[i])
			}
		case 0: // approximate equality: within a factor of 3 (quick preset
			// is small, so percentile ratios are noisy — Section V of the
			// paper reports the same qualitative deviations)
			if meas[i] < pred[i]/3 || meas[i] > pred[i]*3 {
				t.Errorf("theorem %.2f: measured %v far from predicted %v", thm[i], meas[i], pred[i])
			}
		}
	}
	// The exact ones must be tight: 4.2 (info volume) and 4.8 (hop ratio).
	for i := range thm {
		if thm[i] == 4.2 && (meas[i] < 1.95 || meas[i] > 2.05) {
			t.Errorf("theorem 4.2 measured %v, want ≈ 2", meas[i])
		}
		if thm[i] == 4.8 && (meas[i] < 1.7 || meas[i] > 2.3) {
			t.Errorf("theorem 4.8 measured %v, want ≈ 2", meas[i])
		}
	}
}

// Theorem 4.10's worst case measured: full-domain ranges force the
// system-wide probers to visit ~n nodes per attribute while LORM stays
// within its cluster and SWORD at one node.
func TestWorstCase(t *testing.T) {
	env := quickEnv(t)
	tbl, err := WorstCase(env)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(env.P.N)
	d := float64(env.P.D)
	attrs := tbl.Column("attrs")
	mercury := tbl.Column("mercury")
	maan := tbl.Column("maan")
	lorm := tbl.Column("lorm")
	sword := tbl.Column("sword")
	for i, mq := range attrs {
		if mercury[i] < mq*n*0.99 || mercury[i] > mq*n*1.01 {
			t.Errorf("mq=%v: mercury visited %v, want ≈ %v", mq, mercury[i], mq*n)
		}
		if maan[i] < mercury[i] {
			t.Errorf("mq=%v: maan %v below mercury %v", mq, maan[i], mercury[i])
		}
		if lorm[i] > mq*(d+1) {
			t.Errorf("mq=%v: lorm visited %v, bound %v", mq, lorm[i], mq*(d+1))
		}
		if sword[i] != mq {
			t.Errorf("mq=%v: sword visited %v, want %v", mq, sword[i], mq)
		}
		// The theorem's headline: LORM saves at least ~mn contacted nodes.
		if mercury[i]-lorm[i] < mq*n*0.9 {
			t.Errorf("mq=%v: savings %v below the mn bound", mq, mercury[i]-lorm[i])
		}
	}
}
