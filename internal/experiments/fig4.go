package experiments

import (
	"fmt"

	"lorm/internal/analysis"
	"lorm/internal/resource"
	"lorm/internal/stats"
	"lorm/internal/workload"
)

// Fig4 regenerates Figures 4(a) and 4(b): the average and total logical
// hops for multi-attribute NON-RANGE queries versus the number of
// attributes per query (1..MaxAttrs). The paper's setup — 100 randomly
// chosen requesters sending 10 queries each — is reproduced per point.
//
// The returned tables carry a measured series per registered system plus
// the two analysis curves derived from MAAN's measurement:
// "Analysis-LORM" = MAAN / (log n / d) (Theorem 4.7) and
// "Analysis-SWORD/Mercury" = MAAN / 2 (Theorem 4.8).
func Fig4(env *Env) (avg, total *stats.Table, err error) {
	p := env.P
	ap := env.AnalysisParams()
	names := systemNames()
	avgCols := append([]string{"attrs"}, names...)
	for _, name := range names {
		avgCols = append(avgCols, "p99_"+name)
	}
	avgCols = append(avgCols, "analysis_lorm", "analysis_chord")
	totalCols := append([]string{"attrs"}, names...)
	totalCols = append(totalCols, "analysis_lorm", "analysis_chord")
	avg = stats.NewTable("Figure 4(a): average hops per non-range query vs attributes", avgCols...)
	total = stats.NewTable("Figure 4(b): total hops for all non-range queries vs attributes", totalCols...)
	for _, t := range []*stats.Table{avg, total} {
		t.Notes = append(t.Notes,
			fmt.Sprintf("n=%d, %d requesters × %d queries per point", p.N, p.Requesters, p.QueriesPerRequester),
			"analysis_lorm = maan ÷ (log n/d) (Thm 4.7); analysis_chord = maan ÷ 2 (Thm 4.8)")
	}
	avg.Notes = append(avg.Notes, "p99_* = 99th-percentile hops per query (tail latency proxy)")

	numQueries := p.Requesters * p.QueriesPerRequester
	for mq := 1; mq <= p.MaxAttrs; mq++ {
		// Pre-generate the identical query set for every system.
		qrng := workload.Split(p.Seed, 100+mq)
		queries := make([]resource.Query, 0, numQueries)
		for r := 0; r < p.Requesters; r++ {
			requester := fmt.Sprintf("requester-%03d", r)
			for j := 0; j < p.QueriesPerRequester; j++ {
				queries = append(queries, env.Gen.ExactQuery(qrng, mq, requester))
			}
		}

		means := map[string]float64{}
		sums := map[string]float64{}
		p99s := map[string]float64{}
		for name, sys := range env.systemsByName() {
			hops, _, err := runQueries(sys, queries, p.Workers)
			if err != nil {
				return nil, nil, err
			}
			means[name] = hops.Summary().Mean
			sums[name] = hops.Sum()
			p99s[name] = hops.Quantile(0.99)
		}
		avgRow := []float64{float64(mq)}
		totalRow := []float64{float64(mq)}
		for _, name := range names {
			avgRow = append(avgRow, means[name])
			totalRow = append(totalRow, sums[name])
		}
		for _, name := range names {
			avgRow = append(avgRow, p99s[name])
		}
		avgRow = append(avgRow,
			analysis.AnalysisLORMHopsFromMAAN(ap, means["maan"]),
			analysis.AnalysisChordHopsFromMAAN(ap, means["maan"]))
		totalRow = append(totalRow,
			analysis.AnalysisLORMHopsFromMAAN(ap, sums["maan"]),
			analysis.AnalysisChordHopsFromMAAN(ap, sums["maan"]))
		avg.AddRow(avgRow...)
		total.AddRow(totalRow...)
	}
	return avg, total, nil
}
