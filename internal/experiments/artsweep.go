package experiments

import (
	"fmt"
	"math"

	"lorm/internal/resource"
	"lorm/internal/stats"
	"lorm/internal/systemtest"
	"lorm/internal/workload"
)

// artSweepAttrs is the attribute count of the ART scaling sweep. It is
// deliberately small: Mercury builds one physical ring per attribute, and
// the sweep reaches 2^14 nodes — m=8 keeps the five-system build tractable
// at every size while leaving ART's sector mapping non-trivial.
const artSweepAttrs = 8

// artSweepPieces is the announcement count per attribute at each sweep
// point — enough to populate the value buckets queries traverse without
// registration dominating the per-size setup.
const artSweepPieces = 50

// ARTSweep measures how each system's exact-query hop count scales with
// network size, the headline experiment of the ART extension: the four
// paper systems route in O(log n) (O(d) for LORM, with d growing as the
// Cycloid fills), while ART's trie descent deepens only with the trie
// level count — sub-logarithmic in n — so its curve must flatten away from
// everyone else's as n grows.
//
// Each ARTSizes point builds a fresh five-system deployment (LORM at the
// smallest dimension whose complete Cycloid holds n nodes), registers a
// light workload and runs ARTQueries single-attribute exact queries,
// identical across systems. The analysis_chord column is the (1/2)·log2 n
// Chord reference. ARTSubLogAssert guards the claim before the table is
// returned.
func ARTSweep(p Params) (*stats.Table, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	names := systemNames()
	cols := append([]string{"n"}, names...)
	cols = append(cols, "analysis_chord")
	tbl := stats.NewTable("ART scaling: average hops per exact query vs network size", cols...)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("m=%d attributes, %d pieces/attr, %d single-attribute exact queries per size",
			artSweepAttrs, artSweepPieces, p.ARTQueries),
		"lorm runs at the smallest d with d*2^d >= n, so its hop count grows with d",
		"analysis_chord = log2(n)/2, the Chord lookup reference",
		"art descends a trie whose depth grows with the id-space level count, not log n")

	schema := workload.ParetoSchema(artSweepAttrs, p.Span, p.Alpha)
	gen := workload.NewGenerator(schema, p.Alpha)
	for si, n := range p.ARTSizes {
		d := 2
		for d*(1<<uint(d)) < n {
			d++
		}
		dep, err := systemtest.Build(schema, n, systemtest.Options{D: d, Bits: p.Bits})
		if err != nil {
			return nil, fmt.Errorf("experiments: art sweep n=%d: %w", n, err)
		}
		for _, s := range dep.Systems() {
			attachTrace(p, s)
		}
		for _, in := range gen.Announcements(workload.Split(p.Seed, 1000+si), artSweepPieces) {
			if err := dep.RegisterEverywhere(in); err != nil {
				return nil, fmt.Errorf("experiments: art sweep n=%d: %w", n, err)
			}
		}

		qrng := workload.Split(p.Seed, 1100+si)
		queries := make([]resource.Query, p.ARTQueries)
		for i := range queries {
			queries[i] = gen.ExactQuery(qrng, 1, fmt.Sprintf("art-req-%05d", i))
		}
		row := []float64{float64(n)}
		for _, sys := range dep.Systems() {
			hops, _, err := runQueries(sys, queries, p.Workers)
			if err != nil {
				return nil, fmt.Errorf("experiments: art sweep n=%d %s: %w", n, sys.Name(), err)
			}
			row = append(row, hops.Summary().Mean)
		}
		row = append(row, math.Log2(float64(n))/2)
		tbl.AddRow(row...)
	}
	if err := ARTSubLogAssert(tbl); err != nil {
		return nil, err
	}
	tbl.Notes = append(tbl.Notes, "sub-logarithmic assertion passed: art below every system at max n, with strictly smaller growth")
	return tbl, nil
}
