package experiments

import (
	"fmt"

	"lorm/internal/resource"
	"lorm/internal/stats"
	"lorm/internal/workload"
)

// WorstCase measures Theorem 4.10's scenario: range queries whose interval
// spans the entire value domain, so the system-wide probers (Mercury,
// MAAN) must visit every node that can hold a matching piece — n per
// attribute in Mercury's case — while LORM stays inside the attribute's
// d-node cluster and SWORD still answers from one node. The paper proves
// LORM saves at least m·n contacted nodes here; this driver measures it.
func WorstCase(env *Env) (*stats.Table, error) {
	p := env.P
	names := systemNames()
	cols := append([]string{"attrs"}, names...)
	cols = append(cols, "wc_mercury", "wc_maan", "wc_lorm_bound")
	tbl := stats.NewTable("Theorem 4.10: worst-case (full-domain) range queries", cols...)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("n=%d; visited nodes per query whose range covers the whole domain", p.N),
		"wc_* are the Theorem 4.10 worst-case contacted-node terms (probing only, routing excluded)")

	// A modest query count suffices: full-domain walks are deterministic in
	// the visited count (every holder is consulted).
	queries := p.RangeQueries / 10
	if queries < 10 {
		queries = 10
	}
	for _, mq := range []int{1, 2, 4} {
		if mq > p.MaxAttrs {
			break
		}
		qrng := workload.Split(p.Seed, 800+mq)
		qs := make([]resource.Query, queries)
		for i := range qs {
			// Random attributes, full-domain interval on each.
			q := env.Gen.ExactQuery(qrng, mq, fmt.Sprintf("wc-%d", i))
			for j, sub := range q.Subs {
				a, _ := env.Schema.Lookup(sub.Attr)
				q.Subs[j].Low, q.Subs[j].High = a.Min, a.Max
			}
			qs[i] = q
		}
		means := map[string]float64{}
		for name, sys := range env.systemsByName() {
			_, visited, err := runQueries(sys, qs, p.Workers)
			if err != nil {
				return nil, err
			}
			means[name] = visited.Summary().Mean
		}
		row := []float64{float64(mq)}
		for _, name := range names {
			row = append(row, means[name])
		}
		row = append(row,
			float64(mq)*float64(p.N),   // Mercury probes all n per attribute
			float64(mq)*float64(p.N+1), // MAAN adds the attribute root
			float64(mq)*float64(p.D+1)) // LORM bounded by the cluster
		tbl.AddRow(row...)
	}
	return tbl, nil
}
