package experiments

import "testing"

func TestDefaultClusterValidates(t *testing.T) {
	if err := DefaultCluster().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ClusterParams)
	}{
		{"zero nodes", func(p *ClusterParams) { p.Nodes = 0 }},
		{"one peer", func(p *ClusterParams) { p.Peers = 1 }},
		{"zero clients", func(p *ClusterParams) { p.Clients = 0 }},
		{"zero window", func(p *ClusterParams) { p.Window = 0 }},
		{"zero rate", func(p *ClusterParams) { p.Rate = 0 }},
		{"zero duration", func(p *ClusterParams) { p.Duration = 0 }},
		{"announce frac above 1", func(p *ClusterParams) { p.AnnounceFrac = 1.5 }},
		{"zero batch", func(p *ClusterParams) { p.BatchSize = 0 }},
		{"negative hop latency", func(p *ClusterParams) { p.HopLatency = -1 }},
		{"unknown system", func(p *ClusterParams) { p.System = "pastry" }},
	}
	for _, tc := range cases {
		p := DefaultCluster()
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
}
