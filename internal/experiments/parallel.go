package experiments

import "sync"

// forEachParallel feeds items to fn over a bounded worker pool and returns
// the first error fn produced. All items are processed even after an error
// (matching the experiment drivers' semantics: one failing query must not
// starve the collectors of the rest), and fn must be safe for concurrent
// use. workers < 1 runs sequentially.
func forEachParallel[T any](items []T, workers int, fn func(T) error) error {
	if workers < 1 {
		workers = 1
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	work := make(chan T)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				if err := fn(it); err != nil {
					errOnce.Do(func() { first = err })
				}
			}
		}()
	}
	for _, it := range items {
		work <- it
	}
	close(work)
	wg.Wait()
	return first
}
