package experiments

import (
	"testing"
)

// Larger d must yield lower (or equal) 99th-percentile directory size and
// higher range-walk cost — the tradeoff the ablation exists to show.
func TestAblationDimensionTradeoff(t *testing.T) {
	p := Quick()
	p.RangeQueries = 40
	tbl, err := AblationDimension(p, []int{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	p99 := tbl.Column("p99_dir")
	visited := tbl.Column("visited_per_range")
	if !(p99[1] <= p99[0]*1.1) {
		t.Errorf("p99 directory did not improve with d: %v -> %v", p99[0], p99[1])
	}
	if !(visited[1] > visited[0]) {
		t.Errorf("range-walk cost did not grow with d: %v -> %v", visited[0], visited[1])
	}
	// Larger d also means a larger complete overlay: avg directory drops.
	avg := tbl.Column("avg_dir")
	if !(avg[1] < avg[0]) {
		t.Errorf("avg directory did not drop with n: %v -> %v", avg[0], avg[1])
	}
}

// Visited nodes must track the analytical 1 + d·w/2 within tolerance.
func TestAblationRangeWidthTracksAnalysis(t *testing.T) {
	p := Quick()
	p.RangeQueries = 80
	tbl, err := AblationRangeWidth(p, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	meas := tbl.Column("lorm_visited")
	ana := tbl.Column("analysis")
	for i := range tbl.Rows {
		if meas[i] < ana[i]*0.5 || meas[i] > ana[i]*1.5 {
			t.Errorf("row %d: measured %v far from analysis %v", i, meas[i], ana[i])
		}
	}
	if !(meas[1] > meas[0]) {
		t.Errorf("wider ranges should visit more nodes: %v -> %v", meas[0], meas[1])
	}
}

// The CDF hash must dominate the linear hash under skew, and the margin
// must grow as the distribution gets heavier (smaller alpha).
func TestAblationSkewShowsCDFAdvantage(t *testing.T) {
	p := Quick()
	p.M, p.K = 10, 40 // keep the double registration cheap
	tbl, err := AblationSkew(p, []float64{0.8, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	cdf := tbl.Column("p99_cdf_hash")
	lin := tbl.Column("p99_linear_hash")
	for i := range tbl.Rows {
		if cdf[i] > lin[i] {
			t.Errorf("alpha row %d: CDF hash p99 %v worse than linear %v", i, cdf[i], lin[i])
		}
	}
	// Heavy skew (alpha=0.8) should show a clear gap.
	if lin[0] < cdf[0]*1.5 {
		t.Errorf("heavy skew: linear p99 %v not clearly above CDF p99 %v", lin[0], cdf[0])
	}
}
