package experiments

import (
	"fmt"

	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/stats"
)

// runQueries resolves the pre-generated queries against one system over a
// bounded worker pool and collects per-query hop and visited-node counts.
// Queries are generated up front (deterministically) so concurrency never
// perturbs the workload itself, only the execution interleaving.
func runQueries(sys discovery.System, queries []resource.Query, workers int) (hops, visited *stats.Collector, err error) {
	hops, visited = &stats.Collector{}, &stats.Collector{}
	err = forEachParallel(queries, workers, func(q resource.Query) error {
		res, qerr := sys.Discover(q)
		if qerr != nil {
			return fmt.Errorf("%s: %w", sys.Name(), qerr)
		}
		hops.AddInt(res.Cost.Hops)
		visited.AddInt(res.Cost.Visited)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return hops, visited, nil
}
