package experiments

import (
	"fmt"
	"sync"

	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/stats"
)

// runQueries resolves the pre-generated queries against one system over a
// bounded worker pool and collects per-query hop and visited-node counts.
// Queries are generated up front (deterministically) so concurrency never
// perturbs the workload itself, only the execution interleaving.
func runQueries(sys discovery.System, queries []resource.Query, workers int) (hops, visited *stats.Collector, err error) {
	hops, visited = &stats.Collector{}, &stats.Collector{}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	work := make(chan resource.Query)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range work {
				res, qerr := sys.Discover(q)
				if qerr != nil {
					errOnce.Do(func() { first = fmt.Errorf("%s: %w", sys.Name(), qerr) })
					continue
				}
				hops.AddInt(res.Cost.Hops)
				visited.AddInt(res.Cost.Visited)
			}
		}()
	}
	for _, q := range queries {
		work <- q
	}
	close(work)
	wg.Wait()
	if first != nil {
		return nil, nil, first
	}
	return hops, visited, nil
}
