package experiments

import (
	"testing"
)

// The crash experiment's acceptance invariant: LORM's query-failure rate
// falls monotonically in the replication factor at every crash rate, the
// unreplicated r=1 run actually loses entries, and replicated runs with
// post-crash repair lose no answers.
func TestFig6bCrashShape(t *testing.T) {
	p := Quick()
	failTbl, lostTbl, err := Fig6bCrash(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(failTbl.Rows) != len(p.CrashRates) {
		t.Fatalf("rows = %d, want %d", len(failTbl.Rows), len(p.CrashRates))
	}

	r1, r2, r3 := failTbl.Column("lorm_r1"), failTbl.Column("lorm_r2"), failTbl.Column("lorm_r3")
	for i := range failTbl.Rows {
		if !(r1[i] >= r2[i] && r2[i] >= r3[i]) {
			t.Errorf("row %d: failure rate not monotone in replication: r1=%v r2=%v r3=%v",
				i, r1[i], r2[i], r3[i])
		}
		if r2[i] != 0 || r3[i] != 0 {
			t.Errorf("row %d: replicated LORM failed queries under single crashes: r2=%v r3=%v",
				i, r2[i], r3[i])
		}
	}

	// Crashes must actually bite somewhere: the unreplicated runs lose
	// entries and fail queries at the highest crash rate.
	last := len(failTbl.Rows) - 1
	if r1[last] == 0 {
		t.Error("unreplicated LORM shows zero failures at the highest crash rate")
	}
	lost1 := lostTbl.Column("lorm_r1")
	if lost1[last] == 0 {
		t.Error("unreplicated LORM lost no entries at the highest crash rate")
	}
	for _, col := range []string{"mercury", "sword", "maan", "art"} {
		vals := lostTbl.Column(col)
		total := 0.0
		for _, v := range vals {
			total += v
		}
		if total == 0 {
			t.Errorf("%s lost no entries across the whole crash sweep", col)
		}
	}
}
