// Package experiments regenerates every figure of the paper's evaluation
// (Section V): one driver per figure, each returning a stats.Table with
// exactly the rows/series the paper plots — measured results for LORM,
// Mercury, SWORD and MAAN side by side with the "Analysis-…" curves
// derived from Theorems 4.1–4.10.
package experiments

import (
	"fmt"
	"log/slog"
	"runtime"

	"lorm/internal/routing"
)

// Params bundles every knob of the evaluation setup.
type Params struct {
	// D is the Cycloid dimension; the Chord-based systems run with the
	// same number of nodes N. The paper sets D=8 and N=2048 (= d·2^d, the
	// complete Cycloid).
	D int
	// N is the node count for all systems.
	N int
	// Bits is the Chord identifier width.
	Bits uint
	// M is the number of resource attributes (paper: 200).
	M int
	// K is the number of information pieces per attribute (paper: 500).
	K int
	// Alpha is the Bounded Pareto shape for resource values (default 1.5).
	Alpha float64
	// Span is each synthetic attribute's value-domain width.
	Span float64
	// Requesters and QueriesPerRequester parameterize the non-range hop
	// experiment (paper: 100 nodes × 10 queries each).
	Requesters          int
	QueriesPerRequester int
	// RangeQueries is the number of range queries per figure-5 point
	// (paper: 1000).
	RangeQueries int
	// MaxAttrs is the largest attributes-per-query (paper: 10).
	MaxAttrs int
	// ChurnQueries is the number of requests in the dynamic experiment
	// (paper: 10000) and ChurnRates the Poisson rates swept (paper:
	// 0.1..0.5).
	ChurnQueries int
	ChurnRates   []float64
	// QueryRate is the virtual-time arrival rate of queries in the churn
	// experiment (queries per second); the paper leaves it unstated.
	QueryRate float64
	// CrashRates is the fault-arrival rates swept by the crash experiment
	// (events per virtual second; the paper's churn model has no crashes —
	// this extends it with abrupt failures).
	CrashRates []float64
	// CrashFraction is the probability that a fault-plan event is an abrupt
	// crash rather than a graceful departure (default 0.5).
	CrashFraction float64
	// PartitionAt is the virtual time at which the healing-partition
	// experiment forms its partition (default 30).
	PartitionAt float64
	// PartitionDurations is the partition-duration sweep in virtual seconds
	// (default {10, 20}). Every duration must stay below
	// MembershipConfirmAfter: cross-partition suspicions of live nodes then
	// stay false suspicions that clear on heal instead of split-brain
	// confirmations that would fail live nodes out of the overlays.
	PartitionDurations []float64
	// PartitionFraction is the fraction of nodes on the minority side of
	// the partition (default 0.25).
	PartitionFraction float64
	// PartitionCrashRate, when positive, composes a Poisson crash plan with
	// the partition window: crashes reach the membership layer only, and
	// FailNode fires when the failure detector confirms them. The default 0
	// keeps every node alive so the headline sweep's post-heal failure rate
	// is exactly zero.
	PartitionCrashRate float64
	// JoinBursts is the flash-crowd sweep: how many nodes join at the same
	// instant (default {8, 32}). Flash runs use the first LoadSizes
	// deployment size so the Cycloid has free slots for the newcomers.
	JoinBursts []int
	// MembershipConfirmAfter is the failure detector's confirmation timeout
	// in virtual seconds (default 30).
	MembershipConfirmAfter float64
	// RandomSuccessors switches the Chord-based systems (SWORD, MAAN) to
	// ReCord-style randomized finger selection in the partition and flash
	// runs; the ReCord hop table compares both settings regardless.
	RandomSuccessors bool
	// LoadSizes is the node-count sweep of the load-distribution
	// experiment. Every size must be strictly between 2^d (so each LORM
	// attribute cluster spans several physical nodes) and the complete
	// Cycloid size d·2^d (so the overlay keeps free positions for item
	// migration); the default is {1.5·2^d, 3·2^d}.
	LoadSizes []int
	// LoadSkews is the Bounded Pareto shapes of the attribute-popularity
	// distribution swept by the load experiment's skew table (default
	// {1.2, 1.5, 2.0}; larger shapes concentrate announcements on fewer
	// attributes).
	LoadSkews []float64
	// HotKeyFanouts is the replica fan-out sweep of the hot-key replication
	// experiment (default {1, 2, 4, 8}; 1 = promotion off, the baseline).
	HotKeyFanouts []int
	// HotKeyQueries is the number of single-attribute exact queries per
	// sweep point (default 2000); the same query list replays at every
	// fan-out.
	HotKeyQueries int
	// HotKeyZipf is the Zipf exponent of read popularity over the announced
	// pieces (default 1.2; must be > 1 for math/rand Zipf).
	HotKeyZipf float64
	// HotKeyThreshold marks a node hot when its warmup visit load exceeds
	// HotKeyThreshold × mean (default 1.5).
	HotKeyThreshold float64
	// HotKeyNodes is the deployment size of the hot-key experiment; 0 uses
	// the first LoadSizes entry (falling back to N).
	HotKeyNodes int
	// ARTSizes is the network-size sweep of the ART scaling experiment
	// (default 2^7..2^14). Each size builds a fresh five-system deployment,
	// so the sweep dominates the run time of `-exp art` at full scale.
	ARTSizes []int
	// ARTQueries is the number of single-attribute exact queries per ART
	// sweep point (default 300).
	ARTQueries int
	// HubSample bounds how many Mercury hubs are physically built for the
	// outlink experiment (per-hub routing state is i.i.d. across hubs, so
	// the per-node total is measured over HubSample hubs and scaled by
	// M/HubSample). 0 builds every hub.
	HubSample int
	// Sizes is the network-size sweep of Figure 3(a): pairs of Cycloid
	// dimension and the matching complete size d·2^d.
	Sizes []int
	// Seed makes every run reproducible.
	Seed int64
	// Workers is the query-fanout concurrency (default NumCPU).
	Workers int
	// TraceObserver, when non-nil, is attached to the routing fabric of
	// every system an experiment constructs (including environments drivers
	// build internally, like the churn sweep's per-rate deployments), so
	// cmd/lormsim -trace sees every operation of a run.
	TraceObserver routing.Observer
	// MetricsObserver, when non-nil, is attached alongside TraceObserver and
	// aggregates per-system op counts and hop/visited/message histograms
	// into a metrics registry (cmd/lormsim -metrics-out).
	MetricsObserver *routing.MetricsObserver
	// SpanObserver, when non-nil, is attached alongside the other observers
	// and turns operations into timed spans (cmd/lormsim -trace-spans); it
	// is typically a *tracing.Tracer.
	SpanObserver routing.Observer
	// Logger, when non-nil, receives structured membership-event lines
	// (churn joins/departures at Debug, crashes at Info) from every churn
	// process a driver constructs (cmd/lormsim -log-level).
	Logger *slog.Logger
}

func (p Params) withDefaults() Params {
	if p.Workers <= 0 {
		p.Workers = runtime.NumCPU()
	}
	if p.Alpha <= 0 {
		p.Alpha = 1.5
	}
	if p.Span <= 0 {
		p.Span = 500
	}
	if p.QueryRate <= 0 {
		p.QueryRate = 100
	}
	if p.CrashFraction <= 0 || p.CrashFraction > 1 {
		p.CrashFraction = 0.5
	}
	if len(p.CrashRates) == 0 {
		p.CrashRates = []float64{0.1, 0.2, 0.4}
	}
	if p.PartitionAt <= 0 {
		p.PartitionAt = 30
	}
	if len(p.PartitionDurations) == 0 {
		p.PartitionDurations = []float64{10, 20}
	}
	if p.PartitionFraction <= 0 || p.PartitionFraction >= 1 {
		p.PartitionFraction = 0.25
	}
	if len(p.JoinBursts) == 0 {
		p.JoinBursts = []int{8, 32}
	}
	if p.MembershipConfirmAfter <= 0 {
		p.MembershipConfirmAfter = 30
	}
	if len(p.LoadSizes) == 0 && p.D >= 2 {
		cluster := 1 << uint(p.D)
		p.LoadSizes = []int{cluster + cluster/2, 3 * cluster}
	}
	if len(p.LoadSkews) == 0 {
		p.LoadSkews = []float64{1.2, 1.5, 2.0}
	}
	if len(p.HotKeyFanouts) == 0 {
		p.HotKeyFanouts = []int{1, 2, 4, 8}
	}
	if p.HotKeyQueries <= 0 {
		p.HotKeyQueries = 2000
	}
	if p.HotKeyZipf <= 1 {
		p.HotKeyZipf = 1.2
	}
	if p.HotKeyThreshold <= 0 {
		p.HotKeyThreshold = 1.5
	}
	if len(p.ARTSizes) == 0 {
		for e := uint(7); e <= 14; e++ {
			p.ARTSizes = append(p.ARTSizes, 1<<e)
		}
	}
	if p.ARTQueries <= 0 {
		p.ARTQueries = 300
	}
	return p
}

// Validate rejects configurations the drivers cannot honor.
func (p Params) Validate() error {
	if p.D < 2 {
		return fmt.Errorf("experiments: dimension %d too small", p.D)
	}
	if p.N < 2 {
		return fmt.Errorf("experiments: need at least 2 nodes, got %d", p.N)
	}
	if p.M < 1 || p.K < 1 {
		return fmt.Errorf("experiments: need M ≥ 1 and K ≥ 1 (got %d, %d)", p.M, p.K)
	}
	if p.MaxAttrs < 1 {
		return fmt.Errorf("experiments: MaxAttrs must be ≥ 1")
	}
	return nil
}

// Paper returns the paper's full-scale parameters: d=8, n=2048, m=200
// attributes, k=500 values, 100×10 non-range queries, 1000 range queries,
// 10000 churn requests at R ∈ {0.1..0.5}.
func Paper() Params {
	return Params{
		D: 8, N: 2048, Bits: 20,
		M: 200, K: 500, Alpha: 1.5, Span: 500,
		Requesters: 100, QueriesPerRequester: 10,
		RangeQueries: 1000, MaxAttrs: 10,
		ChurnQueries: 10000, ChurnRates: []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		QueryRate: 100,
		HubSample: 20,
		Sizes:     []int{6, 7, 8, 9}, // d values: complete sizes 384, 896, 2048, 4608
		LoadSizes: []int{384, 768, 1536},
		Seed:      20090922, // ICPP 2009
	}.withDefaults()
}

// Standard returns the CLI default: the paper's operating point with
// trimmed query counts, producing the same shapes in a fraction of the
// time on one core.
func Standard() Params {
	p := Paper()
	p.RangeQueries = 300
	p.ChurnQueries = 2000
	p.HubSample = 10
	return p.withDefaults()
}

// Quick returns a scaled-down configuration for unit tests and benchmarks:
// every shape survives, every run finishes in well under a second.
func Quick() Params {
	return Params{
		D: 6, N: 384, Bits: 18,
		M: 20, K: 50, Alpha: 1.5, Span: 500,
		Requesters: 20, QueriesPerRequester: 5,
		RangeQueries: 50, MaxAttrs: 5,
		ChurnQueries: 200, ChurnRates: []float64{0.2, 0.4},
		CrashRates: []float64{0.2, 0.4},
		QueryRate:  100,
		HubSample:  5,
		Sizes:      []int{5, 6},
		ARTSizes:   []int{128, 256, 512},
		ARTQueries: 100,
		Seed:       1,
	}.withDefaults()
}
