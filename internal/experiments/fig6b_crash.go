package experiments

import (
	"fmt"

	"lorm/internal/churn"
	"lorm/internal/core"
	"lorm/internal/discovery"
	"lorm/internal/faults"
	"lorm/internal/sim"
	"lorm/internal/stats"
	"lorm/internal/systemtest"
	"lorm/internal/workload"
)

// crashReplicas is the LORM replication-factor sweep of the crash
// experiment: r=1 is the paper's unreplicated model, r=2 and r=3 exercise
// the replication extension.
var crashReplicas = []int{1, 2, 3}

// crashHorizon is the virtual duration of one crash-churn run. Unlike the
// figure-6 sweep — whose horizon follows from ChurnQueries/QueryRate and
// is a few virtual seconds — the crash experiment must stay up long enough
// for Poisson fault arrivals at the paper's churn-scale rates (0.1–0.5/s)
// to accumulate into a measurable failure signal, so queries are spread
// over a fixed 200 virtual seconds instead.
const crashHorizon = 200.0

// Fig6bCrash extends the paper's dynamic experiment (Figure 6) with abrupt
// crash failures, the case the paper's graceful-departure model explicitly
// excludes. For each fault-arrival rate, every system serves the figure-6
// query load while a faults.Plan crashes or gracefully departs nodes
// (CrashFraction decides which); joins arrive at the same rate, and
// stabilization runs once per virtual second.
//
// A query FAILS when Discover errors or its joined owner set differs from
// the static brute-force oracle — a crash that destroyed the only copy of
// an entry makes every later query for it silently incomplete, and the
// oracle comparison is what surfaces that. LORM runs at replication
// factors 1, 2 and 3 with post-crash replica Repair as the crash hook, so
// the failure-rate column is expected to fall monotonically in r; the
// other registered systems run unreplicated as baselines — nothing to
// repair from, so they keep losing entries for good.
func Fig6bCrash(p Params) (failTbl, lostTbl *stats.Table, err error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	cols := []string{"rate", "lorm_r1", "lorm_r2", "lorm_r3"}
	for _, name := range systemNames() {
		if name != "lorm" {
			cols = append(cols, name)
		}
	}
	failTbl = stats.NewTable("Crash churn: query-failure rate vs fault rate R", cols...)
	lostTbl = stats.NewTable("Crash churn: directory entries lost vs fault rate R", cols...)
	for _, t := range []*stats.Table{failTbl, lostTbl} {
		t.Notes = append(t.Notes,
			fmt.Sprintf("n=%d, %d range queries per rate over %g virtual seconds, crash fraction %g",
				p.N, p.ChurnQueries, crashHorizon, p.CrashFraction),
			"failure = Discover error or owner set differing from the static oracle",
			"lorm_rX = LORM at replication factor X with post-crash replica repair")
	}

	for ri, rate := range p.CrashRates {
		schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
		complete := p.N == p.D*(1<<uint(p.D))
		dep, err := systemtest.Build(schema, p.N, systemtest.Options{
			D: p.D, Bits: p.Bits, CompleteLORM: complete,
		})
		if err != nil {
			return nil, nil, err
		}
		gen := workload.NewGenerator(schema, p.Alpha)
		infos := gen.Announcements(workload.Split(p.Seed, 0), p.K)

		// The LORM replication sweep: dep.LORM is the r=1 run; r=2 and r=3
		// are standalone deployments over the same address population.
		lorms := map[int]*core.System{1: dep.LORM}
		for _, r := range crashReplicas[1:] {
			l, err := newLORM(p, schema)
			if err != nil {
				return nil, nil, err
			}
			if err := l.SetReplicas(r); err != nil {
				return nil, nil, err
			}
			lorms[r] = l
		}
		for _, s := range dep.Systems() {
			attachTrace(p, s)
		}
		for _, in := range infos {
			if err := dep.RegisterEverywhere(in); err != nil {
				return nil, nil, err
			}
			for _, r := range crashReplicas[1:] {
				if _, err := lorms[r].Register(in); err != nil {
					return nil, nil, err
				}
			}
		}

		failRow := []float64{rate}
		lostRow := []float64{rate}
		for _, r := range crashReplicas {
			l := lorms[r]
			repair := func() {}
			if r > 1 {
				repair = func() { l.Repair() }
			}
			fr, lost, err := crashRun(p, gen, dep.Oracle, l, rate, 10*ri+r, repair)
			if err != nil {
				return nil, nil, err
			}
			failRow = append(failRow, fr)
			lostRow = append(lostRow, float64(lost))
		}
		baselines, err := dynamicSystems(dep)
		if err != nil {
			return nil, nil, err
		}
		for _, sys := range baselines {
			if sys.Name() == "lorm" {
				continue // covered by the replication sweep above
			}
			fr, lost, err := crashRun(p, gen, dep.Oracle, sys, rate, 10*ri+5, nil)
			if err != nil {
				return nil, nil, err
			}
			failRow = append(failRow, fr)
			lostRow = append(lostRow, float64(lost))
		}
		failTbl.AddRow(failRow...)
		lostTbl.AddRow(lostRow...)
	}
	return failTbl, lostTbl, nil
}

// crashRun drives one system through the crash-churn scenario and returns
// the fraction of queries that failed (error or oracle mismatch) and the
// number of directory entries lost to crashes.
func crashRun(p Params, gen *workload.Generator, oracle *discovery.Oracle, sys discovery.Dynamic, rate float64, streamIdx int, repair func()) (failRate float64, lost int, err error) {
	var sched sim.Scheduler
	plan, err := faults.New(faults.Config{
		Rate:          rate,
		CrashFraction: p.CrashFraction,
		Rng:           workload.Split(p.Seed, 500+streamIdx),
	})
	if err != nil {
		return 0, 0, err
	}
	proc, err := churn.New(sys, &sched, churn.Config{
		Rate: rate, // joins arrive at the fault rate, keeping membership balanced
		// Stabilize every 5 virtual seconds instead of every second: still
		// several rounds per expected fault gap at the swept rates, but it
		// keeps Mercury's m-hub maintenance from dominating the 200-second
		// horizon at paper scale. Detours cover the window in between, and
		// replica repair is the crash hook, not a maintain side effect.
		MaintainEvery: 5,
		Rng:           workload.Split(p.Seed, 600+streamIdx),
		Faults:        plan,
		Logger:        p.Logger,
		Repair:        repair,
	})
	if err != nil {
		return 0, 0, err
	}
	proc.Start()

	qrng := workload.Split(p.Seed, 700+streamIdx)
	qrate := float64(p.ChurnQueries) / crashHorizon
	failures, queries := 0, 0
	for i := 0; i < p.ChurnQueries; i++ {
		at := float64(i) / qrate
		q := gen.RangeQuery(qrng, Fig6Attrs, 0.5, fmt.Sprintf("crash-req-%05d", i))
		sched.At(at, func() {
			queries++
			res, qerr := sys.Discover(q)
			if qerr != nil {
				failures++
				return
			}
			want, oerr := oracle.Discover(q)
			if oerr != nil || !sameOwners(res.Owners, want.Owners) {
				failures++
			}
		})
	}
	sched.RunUntil(crashHorizon + 1)
	if queries == 0 {
		return 0, proc.LostEntries, nil
	}
	return float64(failures) / float64(queries), proc.LostEntries, nil
}

// sameOwners compares two sorted owner sets.
func sameOwners(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
