package experiments

import (
	"fmt"

	"lorm/internal/analysis"
	"lorm/internal/churn"
	"lorm/internal/discovery"
	"lorm/internal/sim"
	"lorm/internal/stats"
	"lorm/internal/workload"
)

// Fig6Attrs is the number of attributes per query in the dynamic
// experiment (the paper leaves it unstated; 3 is representative of the
// Figure 4/5 sweeps).
const Fig6Attrs = 3

// Fig6 regenerates Figures 6(a) and 6(b): query efficiency in a highly
// dynamic environment. For each churn rate R (a Poisson process of node
// joins and, independently, node departures, each at rate R per second)
// every system answers ChurnQueries requests arriving at QueryRate per
// second of virtual time while churning; departures are graceful and
// stabilization runs once per virtual second.
//
// Figure 6(a) reports the average logical hops of non-range queries;
// Figure 6(b) the average visited nodes of range queries. The analysis
// series are the static closed forms — the paper's observation is exactly
// that churn leaves the measured curves at those levels, with zero
// failures.
func Fig6(p Params) (hopsTbl, visitedTbl *stats.Table, err error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	ap := analysis.Params{N: p.N, M: p.M, K: p.K, D: p.D}
	names := systemNames()
	hopsCols := append([]string{"rate"}, names...)
	hopsCols = append(hopsCols, "analysis_lorm", "analysis_chord", "failures")
	visitedCols := append([]string{"rate"}, names...)
	for _, name := range names {
		visitedCols = append(visitedCols, "analysis_"+name)
	}
	visitedCols = append(visitedCols, "failures")
	hopsTbl = stats.NewTable("Figure 6(a): average hops per non-range query vs churn rate R", hopsCols...)
	visitedTbl = stats.NewTable("Figure 6(b): average visited nodes per range query vs churn rate R", visitedCols...)
	for _, t := range []*stats.Table{hopsTbl, visitedTbl} {
		t.Notes = append(t.Notes,
			fmt.Sprintf("n=%d, %d queries per rate at %g/s virtual time, %d attributes per query",
				p.N, p.ChurnQueries, p.QueryRate, Fig6Attrs),
			"departures graceful, stabilization every 1s — zero failures expected")
	}

	for ri, rate := range p.ChurnRates {
		env, err := NewEnv(p)
		if err != nil {
			return nil, nil, err
		}
		hopMeans := map[string]float64{}
		visitMeans := map[string]float64{}
		failures := 0
		for name, sys := range env.systemsByName() {
			dyn, ok := sys.(discovery.Dynamic)
			if !ok {
				return nil, nil, fmt.Errorf("experiments: %s does not support churn", name)
			}
			h, v, f, err := churnRun(env, dyn, rate, ri)
			if err != nil {
				return nil, nil, err
			}
			hopMeans[name] = h
			visitMeans[name] = v
			failures += f
		}
		hopsRow := []float64{rate}
		visitedRow := []float64{rate}
		for _, name := range names {
			hopsRow = append(hopsRow, hopMeans[name])
			visitedRow = append(visitedRow, visitMeans[name])
		}
		hopsRow = append(hopsRow,
			analysis.NonRangeHops(ap, "lorm", Fig6Attrs),
			analysis.NonRangeHops(ap, "mercury", Fig6Attrs),
			float64(failures))
		for _, name := range names {
			visitedRow = append(visitedRow, analysis.RangeVisitedNodes(ap, name, Fig6Attrs))
		}
		visitedRow = append(visitedRow, float64(failures))
		hopsTbl.AddRow(hopsRow...)
		visitedTbl.AddRow(visitedRow...)
	}
	return hopsTbl, visitedTbl, nil
}

// churnRun churns one system at the given rate while it serves the query
// load, returning the mean non-range hops, mean range visited nodes and
// the number of failed queries.
func churnRun(env *Env, sys discovery.Dynamic, rate float64, rateIdx int) (hops, visited float64, failures int, err error) {
	p := env.P
	var sched sim.Scheduler
	proc, err := churn.New(sys, &sched, churn.Config{
		Rate:   rate,
		Rng:    workload.Split(p.Seed, 300+rateIdx),
		Logger: p.Logger,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	proc.Start()

	qrng := workload.Split(p.Seed, 400+rateIdx)
	hopsC, visitedC := &stats.Collector{}, &stats.Collector{}
	// Queries arrive at QueryRate per second; each arrival issues one
	// non-range query (Figure 6(a)) and one range query (Figure 6(b)).
	for i := 0; i < p.ChurnQueries; i++ {
		at := float64(i) / p.QueryRate
		req := fmt.Sprintf("requester-%05d", i)
		exact := env.Gen.ExactQuery(qrng, Fig6Attrs, req)
		rng := env.Gen.RangeQuery(qrng, Fig6Attrs, 0.5, req)
		sched.At(at, func() {
			if res, qerr := sys.Discover(exact); qerr != nil {
				failures++
			} else {
				hopsC.AddInt(res.Cost.Hops)
			}
			if res, qerr := sys.Discover(rng); qerr != nil {
				failures++
			} else {
				visitedC.AddInt(res.Cost.Visited)
			}
		})
	}
	horizon := float64(p.ChurnQueries)/p.QueryRate + 1
	sched.RunUntil(horizon)
	return hopsC.Summary().Mean, visitedC.Summary().Mean, failures, nil
}
