package experiments

import (
	"fmt"
	"math/rand"

	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/stats"
	"lorm/internal/systemtest"
	"lorm/internal/workload"
)

// hotPromoter is the promotion surface every system exposes alongside
// discovery.Replicated (the options type keeps it out of the interface).
type hotPromoter interface {
	discovery.Replicated
	PromoteHot([]discovery.NodeLoad, replication.HotKeyOptions) int
}

// HotKey runs the hot-key replication experiment: a read-heavy workload of
// single-attribute exact queries whose popularity over the announced pieces
// is Zipf-distributed, swept over replica fan-out {1, 2, 4, 8} (fan-out 1 =
// promotion off). Each fan-out gets a fresh deployment of all four systems;
// a warmup pass records per-node traffic in a loadbalance.Ledger, hot-key
// promotion replicates the key-groups rooted on hot nodes across fan-out
// holders, and a measured replay of the same query list reports the
// per-node visit-load imbalance (max/mean and Gini).
//
// The paper's systems differ in what a "key-group" pools, so the sweep is
// also a comparison of promotion granularity: SWORD and MAAN's attribute
// index promote whole attribute pools, LORM promotes a quantile bucket of
// an attribute's values, Mercury promotes a single value's key-group.
func HotKey(p Params) (factor, gini *stats.Table, err error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	for _, f := range p.HotKeyFanouts {
		if f < 1 {
			return nil, nil, fmt.Errorf("experiments: hot-key fan-out %d < 1", f)
		}
	}
	n := p.HotKeyNodes
	if n == 0 {
		if len(p.LoadSizes) > 0 {
			n = p.LoadSizes[0]
		} else {
			n = p.N
		}
	}

	schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
	gen := workload.NewGenerator(schema, p.Alpha)
	infos := gen.Announcements(workload.Split(p.Seed, 600), p.K)

	// One Zipf-popular query list, replayed verbatim at every fan-out: rank
	// r of the announcement list is read with probability ∝ 1/(1+r)^s.
	qrng := workload.Split(p.Seed, 601)
	zipf := rand.NewZipf(qrng, p.HotKeyZipf, 1, uint64(len(infos)-1))
	queries := make([]resource.Query, 0, p.HotKeyQueries)
	for j := 0; j < p.HotKeyQueries; j++ {
		in := infos[zipf.Uint64()]
		queries = append(queries, resource.Query{
			Requester: fmt.Sprintf("requester-%04d", j),
			Subs:      []resource.SubQuery{{Attr: in.Attr, Low: in.Value, High: in.Value}},
		})
	}

	cols := append([]string{"fanout"}, loadOrder...)
	factor = stats.NewTable("Hot-key replication: max/mean query-visit load factor vs replica fan-out", cols...)
	gini = stats.NewTable("Hot-key replication: Gini coefficient of query visits vs replica fan-out", cols...)
	factor.Notes = append(factor.Notes,
		fmt.Sprintf("n=%d nodes, m=%d attributes, k=%d pieces/attr; %d exact queries, Zipf(s=%.2f) read popularity over the announcements",
			n, p.M, p.K, p.HotKeyQueries, p.HotKeyZipf),
		fmt.Sprintf("warmup pass marks nodes above %.2fx mean visits hot, promotes their most-read key-groups onto fanout-1 ring successors, then the same queries replay with power-of-two-choices replica reads", p.HotKeyThreshold),
		"fanout=1 is the baseline (promotion off); promotion granularity is the system's key-group: sword/maan an attribute pool, lorm a value-quantile bucket, mercury one value")

	addrs := systemtest.Addresses(n)
	for _, f := range p.HotKeyFanouts {
		dep, err := systemtest.Build(schema, n, systemtest.Options{D: p.D, Bits: p.Bits})
		if err != nil {
			return nil, nil, err
		}
		systems := dep.Systems()
		ledgers := make(map[string]*loadbalance.Ledger)
		for _, s := range systems {
			attachTrace(p, s)
			led := &loadbalance.Ledger{}
			s.(routing.Instrumented).RoutingFabric().Observe(led)
			ledgers[s.Name()] = led
		}
		if err := forEachParallel(infos, p.Workers, func(in resource.Info) error {
			for _, s := range systems {
				if _, err := s.Register(in); err != nil {
					return fmt.Errorf("%s: %w", s.Name(), err)
				}
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}

		reports := make(map[string]loadbalance.Report)
		promoted := make(map[string]int)
		for _, s := range systems {
			led := ledgers[s.Name()]
			// Warmup: replicator read tallies and the ledger's hot-node
			// report both accumulate here.
			if _, _, err := runQueries(s, queries, p.Workers); err != nil {
				return nil, nil, err
			}
			if f > 1 {
				promoted[s.Name()] = s.(hotPromoter).PromoteHot(led.VisitLoads(addrs), replication.HotKeyOptions{
					Fanout:    f,
					Threshold: p.HotKeyThreshold,
				})
			}
			// Measured replay: single worker, so the power-of-two-choices
			// rotation is deterministic and the run reproducible.
			led.Reset()
			if _, _, err := runQueries(s, queries, 1); err != nil {
				return nil, nil, err
			}
			reports[s.Name()] = loadbalance.Analyze(led.VisitLoads(addrs), 3)
		}

		fRow, gRow := []float64{float64(f)}, []float64{float64(f)}
		for _, name := range loadOrder {
			fRow = append(fRow, reports[name].MaxMean)
			gRow = append(gRow, reports[name].Gini)
		}
		factor.AddRow(fRow...)
		gini.AddRow(gRow...)
		if f > 1 {
			note := fmt.Sprintf("fanout=%d promoted key-groups:", f)
			for _, name := range loadOrder {
				note += fmt.Sprintf(" %s=%d", name, promoted[name])
			}
			factor.Notes = append(factor.Notes, note)
		}
	}
	return factor, gini, nil
}
