package experiments

import (
	"fmt"

	"lorm/internal/resource"
	"lorm/internal/stats"
	"lorm/internal/workload"
)

// AblationDimension sweeps the Cycloid dimension d at (approximately)
// fixed node count and reports LORM's two sides of the tradeoff that
// Theorems 4.3–4.5 and 4.9 quantify: larger d spreads each attribute's
// information over more nodes (lower 99th-percentile directory size) but
// lengthens both the lookup path (O(d) hops) and the intra-cluster range
// walk (d/4 visited nodes).
func AblationDimension(p Params, dims []int) (*stats.Table, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(dims) == 0 {
		dims = []int{5, 6, 7, 8, 9, 10}
	}
	tbl := stats.NewTable("Ablation: Cycloid dimension vs balance and cost",
		"d", "n", "avg_dir", "p99_dir", "hops_per_lookup", "visited_per_range")
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("m=%d attributes, k=%d pieces; complete overlays n=d*2^d", p.M, p.K),
		"tradeoff: larger d balances directories but lengthens lookups and walks (Thms 4.3-4.5, 4.9)")

	for _, d := range dims {
		q := p
		q.D = d
		q.N = d * (1 << uint(d))
		q.Sizes = nil
		row, err := lormOnlyRun(q)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(float64(d), float64(q.N), row.avgDir, row.p99Dir, row.hops, row.visited)
	}
	return tbl, nil
}

// AblationRangeWidth sweeps the expected quantile width of range queries
// and reports visited nodes per query for LORM and the analytical
// prediction 1 + d·w̄ where w̄ is the expected covered mass — validating
// the ¼-width modeling choice behind Figure 5.
func AblationRangeWidth(p Params, widthFracs []float64) (*stats.Table, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(widthFracs) == 0 {
		widthFracs = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	}
	env, err := NewEnv(p)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Ablation: range width vs visited nodes (LORM)",
		"width_frac", "expected_mass", "lorm_visited", "analysis")
	tbl.Notes = append(tbl.Notes,
		"width_frac w: query width uniform on (0, w] of the value mass; expected covered mass w/2",
		"analysis: 1 + d*(w/2) visited nodes per single-attribute range query")

	for wi, w := range widthFracs {
		qrng := workload.Split(p.Seed, 500+wi)
		queries := make([]resource.Query, p.RangeQueries)
		for i := range queries {
			queries[i] = env.Gen.RangeQuery(qrng, 1, w, fmt.Sprintf("req-%d", i))
		}
		_, visited, err := runQueries(env.Dep.LORM, queries, p.Workers)
		if err != nil {
			return nil, err
		}
		mass := w / 2
		tbl.AddRow(w, mass, visited.Summary().Mean, 1+float64(p.D)*mass)
	}
	return tbl, nil
}

// AblationSkew sweeps the Bounded Pareto shape (plus a uniform control)
// and reports LORM's directory balance with and without the
// distribution-aware ("uniform") locality-preserving hash — the mechanism
// that keeps the 99th percentile near the analysis in Figures 3(b)-(d)
// despite skewed values.
func AblationSkew(p Params, alphas []float64) (*stats.Table, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(alphas) == 0 {
		alphas = []float64{0.8, 1.5, 3.0}
	}
	tbl := stats.NewTable("Ablation: value skew vs LORM directory balance",
		"alpha", "p99_cdf_hash", "p99_linear_hash", "avg")
	tbl.Notes = append(tbl.Notes,
		"alpha: Bounded Pareto shape (smaller = heavier skew); avg is hash-independent",
		"cdf hash = MAAN's uniform locality-preserving hashing; linear hash collapses under skew")

	for _, alpha := range alphas {
		cdf, err := lormDirStats(p, alpha, true)
		if err != nil {
			return nil, err
		}
		lin, err := lormDirStats(p, alpha, false)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(alpha, cdf.P99, lin.P99, cdf.Mean)
	}
	return tbl, nil
}

// lormDirStats registers the workload into a standalone LORM system using
// either the distribution-aware or the plain linear locality hash and
// summarizes directory sizes.
func lormDirStats(p Params, alpha float64, cdfHash bool) (stats.Summary, error) {
	var schema *resource.Schema
	if cdfHash {
		schema = workload.ParetoSchema(p.M, p.Span, alpha)
	} else {
		schema = resource.SyntheticSchema(p.M, p.Span)
	}
	sys, err := newLORM(p, schema)
	if err != nil {
		return stats.Summary{}, err
	}
	gen := workload.NewGenerator(schema, alpha)
	for _, in := range gen.Announcements(workload.Split(p.Seed, 600), p.K) {
		if _, err := sys.Register(in); err != nil {
			return stats.Summary{}, err
		}
	}
	return stats.SummarizeInts(sys.DirectorySizes()), nil
}

// lormRunResult carries one dimension-sweep row.
type lormRunResult struct {
	avgDir, p99Dir, hops, visited float64
}

// lormOnlyRun builds a complete LORM overlay, registers the workload and
// measures lookup hops plus range-walk visits.
func lormOnlyRun(p Params) (lormRunResult, error) {
	schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
	sys, err := newLORM(p, schema)
	if err != nil {
		return lormRunResult{}, err
	}
	gen := workload.NewGenerator(schema, p.Alpha)
	for _, in := range gen.Announcements(workload.Split(p.Seed, 700), p.K) {
		if _, err := sys.Register(in); err != nil {
			return lormRunResult{}, err
		}
	}
	dirs := stats.SummarizeInts(sys.DirectorySizes())

	qrng := workload.Split(p.Seed, 701)
	exact := make([]resource.Query, p.RangeQueries)
	ranged := make([]resource.Query, p.RangeQueries)
	for i := range exact {
		exact[i] = gen.ExactQuery(qrng, 1, fmt.Sprintf("r%d", i))
		ranged[i] = gen.RangeQuery(qrng, 1, 0.5, fmt.Sprintf("r%d", i))
	}
	hops, _, err := runQueries(sys, exact, p.Workers)
	if err != nil {
		return lormRunResult{}, err
	}
	_, visited, err := runQueries(sys, ranged, p.Workers)
	if err != nil {
		return lormRunResult{}, err
	}
	return lormRunResult{
		avgDir:  dirs.Mean,
		p99Dir:  dirs.P99,
		hops:    hops.Summary().Mean,
		visited: visited.Summary().Mean,
	}, nil
}
