package experiments

import (
	"fmt"

	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
	"lorm/internal/metrics"
	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/stats"
	"lorm/internal/systemtest"
	"lorm/internal/workload"
)

// loadOrder is the system column order of every load table — the registry
// order, so new systems appear in the load and hot-key sweeps for free.
var loadOrder = systemtest.Names()

// loadPoint is one measured deployment of the load experiment: per-system
// storage imbalance before and (optionally) after a rebalance pass, the
// migration activity of that pass, and query-traffic imbalance from the
// per-node ledger.
type loadPoint struct {
	pre       map[string]loadbalance.Report
	post      map[string]loadbalance.Report
	visits    map[string]loadbalance.Report
	migration map[string]discovery.MigrationStats
}

// measureLoadPoint builds a fresh deployment of n nodes, registers the
// Bounded-Pareto-skewed announcement workload in every registered system,
// and measures load distributions. Unlike the figure environments, LORM is
// always deployed sparse — the node sizes are validated to keep free
// Cycloid positions, since a complete overlay structurally blocks every
// boundary move.
func measureLoadPoint(p Params, n, seedIdx int, skew float64, withVisits, rebalance bool) (*loadPoint, error) {
	schema := workload.ParetoSchema(p.M, p.Span, p.Alpha)
	dep, err := systemtest.Build(schema, n, systemtest.Options{D: p.D, Bits: p.Bits})
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(schema, p.Alpha)
	systems := dep.Systems()
	ledgers := make(map[string]*loadbalance.Ledger)
	for _, s := range systems {
		attachTrace(p, s)
		if withVisits {
			if inst, ok := s.(routing.Instrumented); ok {
				led := &loadbalance.Ledger{}
				inst.RoutingFabric().Observe(led)
				ledgers[s.Name()] = led
			}
		}
	}

	infos := gen.SkewedAnnouncements(workload.Split(p.Seed, 400+seedIdx), p.K, skew)
	if err := forEachParallel(infos, p.Workers, func(in resource.Info) error {
		for _, s := range systems {
			if _, err := s.Register(in); err != nil {
				return fmt.Errorf("%s: %w", s.Name(), err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	pt := &loadPoint{
		pre:       make(map[string]loadbalance.Report),
		post:      make(map[string]loadbalance.Report),
		visits:    make(map[string]loadbalance.Report),
		migration: make(map[string]discovery.MigrationStats),
	}
	balancers := make(map[string]discovery.Balancer)
	for _, s := range systems {
		b, ok := s.(discovery.Balancer)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not implement discovery.Balancer", s.Name())
		}
		balancers[s.Name()] = b
		pt.pre[s.Name()] = loadbalance.Analyze(b.DirectoryLoads(), 3)
	}

	if withVisits {
		qrng := workload.Split(p.Seed, 500+seedIdx)
		mq := 3
		if mq > p.MaxAttrs {
			mq = p.MaxAttrs
		}
		queries := make([]resource.Query, 0, p.RangeQueries)
		for j := 0; j < p.RangeQueries; j++ {
			queries = append(queries, gen.RangeQuery(qrng, mq, 0.5, fmt.Sprintf("requester-%04d", j)))
		}
		addrs := systemtest.Addresses(n)
		for _, s := range systems {
			if _, _, err := runQueries(s, queries, p.Workers); err != nil {
				return nil, err
			}
			pt.visits[s.Name()] = loadbalance.Analyze(ledgers[s.Name()].VisitLoads(addrs), 3)
		}
	}

	if rebalance {
		for _, s := range systems {
			b := balancers[s.Name()]
			ms, err := b.Rebalance()
			if err != nil {
				return nil, fmt.Errorf("%s: rebalance: %w", s.Name(), err)
			}
			pt.migration[s.Name()] = ms
			pt.post[s.Name()] = loadbalance.Analyze(b.DirectoryLoads(), 3)
		}
	}
	return pt, nil
}

// loadCols builds a load-table header: the sweep variable, one column per
// registered system, and — when a rebalance pass runs — the matching
// post-rebalance columns.
func loadCols(first string, rebalance bool) []string {
	cols := append([]string{first}, loadOrder...)
	if rebalance {
		for _, s := range loadOrder {
			cols = append(cols, s+"_rebal")
		}
	}
	return cols
}

// loadRow assembles one row in loadCols order from a per-system metric.
func loadRow(first float64, pt *loadPoint, rebalance bool, metric func(loadbalance.Report) float64) []float64 {
	row := []float64{first}
	for _, s := range loadOrder {
		row = append(row, metric(pt.pre[s]))
	}
	if rebalance {
		for _, s := range loadOrder {
			row = append(row, metric(pt.post[s]))
		}
	}
	return row
}

// LoadBalance runs the load-distribution experiment: it sweeps node count
// (LoadSizes) and Bounded Pareto attribute-popularity skew (LoadSkews),
// measuring each system's per-node stored-entry distribution and, when
// rebalance is true, re-measuring after one neighbor item-migration pass.
//
// The tables make the paper's "SWORD is centralized" classification a
// measured result: every value of an attribute lands on the node owning
// H(attr), so SWORD's max/mean load factor dwarfs the value-spreading
// systems at every size and its hotspots report blocked (an attribute pool
// is one indivisible key-group). MAAN's dual registration halves its
// factor (the pool stays, the value-keyed half sheds); LORM and Mercury
// spread values and both detect and repair their milder skew-induced
// hotspots.
func LoadBalance(p Params, rebalance bool) ([]*stats.Table, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cluster := 1 << uint(p.D)
	capacity := p.D * cluster
	if len(p.LoadSizes) == 0 {
		return nil, fmt.Errorf("experiments: no load sizes to sweep")
	}
	for _, n := range p.LoadSizes {
		if n <= cluster || n >= capacity {
			return nil, fmt.Errorf("experiments: load size %d must lie strictly between the LORM cluster size 2^d = %d and the complete Cycloid size d·2^d = %d",
				n, cluster, capacity)
		}
	}

	factor := stats.NewTable("Load balance: max/mean stored-entry load factor vs node count", loadCols("n", rebalance)...)
	gini := stats.NewTable("Load balance: Gini coefficient of stored entries vs node count", loadCols("n", rebalance)...)
	visits := stats.NewTable("Load balance: max/mean query-visit load factor vs node count (pre-rebalance traffic)",
		append([]string{"n"}, loadOrder...)...)
	factor.Notes = append(factor.Notes,
		fmt.Sprintf("m=%d attributes, k=%d pieces/attr, popularity skew alpha=%.1f, value skew alpha=%.1f", p.M, p.K, p.Alpha, p.Alpha),
		"load factor = heaviest node / mean (1.0 = perfectly even)",
		"sword stores all k pieces of an attribute on the single node owning H(attr): its hotspots are one indivisible key-group and cannot shed (the paper's \"centralized\" verdict)")
	visits.Notes = append(visits.Notes,
		fmt.Sprintf("%d range queries x %d attributes per point, visits charged per node by the routing-fabric ledger", p.RangeQueries, min(3, p.MaxAttrs)))

	var migr, moved, blocked *stats.Table
	if rebalance {
		migr = stats.NewTable("Rebalance pass: boundary migrations vs node count", append([]string{"n"}, loadOrder...)...)
		moved = stats.NewTable("Rebalance pass: entries moved vs node count", append([]string{"n"}, loadOrder...)...)
		blocked = stats.NewTable("Rebalance pass: blocked hotspots vs node count", append([]string{"n"}, loadOrder...)...)
		migr.Notes = append(migr.Notes,
			"one pass per system: hottest node above 1.2x mean sheds a contiguous key-group interval to a ring neighbor (chord/cycloid Advance/Retreat)")
	}

	for i, n := range p.LoadSizes {
		pt, err := measureLoadPoint(p, n, i, p.Alpha, true, rebalance)
		if err != nil {
			return nil, err
		}
		factor.AddRow(loadRow(float64(n), pt, rebalance, func(r loadbalance.Report) float64 { return r.MaxMean })...)
		gini.AddRow(loadRow(float64(n), pt, rebalance, func(r loadbalance.Report) float64 { return r.Gini })...)
		visitRow := []float64{float64(n)}
		for _, s := range loadOrder {
			visitRow = append(visitRow, pt.visits[s].MaxMean)
		}
		visits.AddRow(visitRow...)
		if rebalance {
			mRow, eRow, bRow := []float64{float64(n)}, []float64{float64(n)}, []float64{float64(n)}
			for _, s := range loadOrder {
				ms := pt.migration[s]
				mRow = append(mRow, float64(ms.Migrations))
				eRow = append(eRow, float64(ms.EntriesMoved))
				bRow = append(bRow, float64(ms.Blocked))
			}
			migr.AddRow(mRow...)
			moved.AddRow(eRow...)
			blocked.AddRow(bRow...)
		}
	}

	skewFactor := stats.NewTable(
		fmt.Sprintf("Load balance: max/mean load factor vs attribute-popularity skew (n=%d)", p.LoadSizes[0]),
		loadCols("alpha", rebalance)...)
	skewGini := stats.NewTable(
		fmt.Sprintf("Load balance: Gini coefficient vs attribute-popularity skew (n=%d)", p.LoadSizes[0]),
		loadCols("alpha", rebalance)...)
	skewFactor.Notes = append(skewFactor.Notes,
		"larger alpha concentrates the m*k announcements on fewer attributes; value distribution is unchanged")
	for i, skew := range p.LoadSkews {
		pt, err := measureLoadPoint(p, p.LoadSizes[0], 50+i, skew, false, rebalance)
		if err != nil {
			return nil, err
		}
		skewFactor.AddRow(loadRow(skew, pt, rebalance, func(r loadbalance.Report) float64 { return r.MaxMean })...)
		skewGini.AddRow(loadRow(skew, pt, rebalance, func(r loadbalance.Report) float64 { return r.Gini })...)
	}

	tables := []*stats.Table{factor, gini, visits}
	if rebalance {
		snap := metrics.Default().Snapshot()
		counter := func(name string) string {
			f, ok := snap.Family(name)
			if !ok {
				return name + "=0"
			}
			return fmt.Sprintf("%s=%.0f", name, f.Total())
		}
		migr.Notes = append(migr.Notes,
			"process-wide counters: "+counter("loadbalance_passes_total")+" "+counter("loadbalance_migrations_total")+
				" "+counter("loadbalance_entries_moved_total")+" "+counter("loadbalance_blocked_hotspots_total"))
		tables = append(tables, migr, moved, blocked)
	}
	if len(p.LoadSkews) > 0 {
		tables = append(tables, skewFactor, skewGini)
	}
	return tables, nil
}
