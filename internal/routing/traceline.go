package routing

import (
	"fmt"
	"strconv"
	"strings"

	"lorm/internal/discovery"
)

// TraceLine is one parsed TraceSink line: the operation identity, the cost
// the sink reported, and the decoded hop path. Step IDs are not carried on
// the wire format, so parsed steps have ID 0.
type TraceLine struct {
	System string
	Op     Kind
	Tag    string
	Cost   discovery.Cost
	Path   []Step
}

// ReasonFromLetter decodes the compact single-character encoding written by
// Reason.Letter. The second return is false for an unknown letter.
func ReasonFromLetter(b byte) (Reason, bool) {
	switch b {
	case 'f':
		return ReasonFingerForward, true
	case 'w':
		return ReasonRangeWalk, true
	case 'r':
		return ReasonReplicate, true
	case 'v':
		return ReasonDirectoryVisit, true
	case 'd':
		return ReasonDetour, true
	case 'p':
		return ReasonReplicaRead, true
	case 't':
		return ReasonTrieDescent, true
	}
	return 0, false
}

// ParseTraceLine parses one line in the TraceSink format,
//
//	system=lorm op=discover tag=req-007 hops=9 visited=3 msgs=12 path=f:a,v:b
//
// validating field order, integer fields and path-step encoding. It is the
// shared decoder for every consumer of trace files (cmd/lormtrace, the
// lormsim trace-consistency test) so the format has exactly one reader to
// match its one writer.
func ParseTraceLine(line string) (TraceLine, error) {
	var tl TraceLine
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 7 {
		return tl, fmt.Errorf("routing: trace line has %d fields, want 7: %q", len(fields), line)
	}
	keys := [7]string{"system", "op", "tag", "hops", "visited", "msgs", "path"}
	vals := [7]string{}
	for i, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k != keys[i] {
			return tl, fmt.Errorf("routing: trace field %d is %q, want %s=...", i, f, keys[i])
		}
		vals[i] = v
	}
	tl.System = vals[0]
	tl.Op = Kind(vals[1])
	tl.Tag = vals[2]
	for i, dst := range []*int{&tl.Cost.Hops, &tl.Cost.Visited, &tl.Cost.Messages} {
		n, err := strconv.Atoi(vals[3+i])
		if err != nil {
			return tl, fmt.Errorf("routing: trace field %s=%q: %v", keys[3+i], vals[3+i], err)
		}
		*dst = n
	}
	if vals[6] != "" {
		for _, part := range strings.Split(vals[6], ",") {
			letter, addr, ok := strings.Cut(part, ":")
			if !ok || len(letter) != 1 {
				return tl, fmt.Errorf("routing: trace path step %q, want <letter>:<addr>", part)
			}
			reason, ok := ReasonFromLetter(letter[0])
			if !ok {
				return tl, fmt.Errorf("routing: trace path step %q has unknown reason letter", part)
			}
			tl.Path = append(tl.Path, Step{Addr: addr, Reason: reason})
		}
	}
	return tl, nil
}
