package routing

import (
	"strings"
	"testing"

	"lorm/internal/metrics"
)

// finishOp runs one synthetic op with the given hop/visit counts through a
// fabric.
func finishOp(f *Fabric, kind Kind, tag string, hops, visits int) *Op {
	op := f.Begin(kind, tag)
	for i := 0; i < hops; i++ {
		op.Forward("n", uint64(i), ReasonFingerForward)
	}
	for i := 0; i < visits; i++ {
		op.Visit("n", uint64(i))
	}
	op.Finish()
	return op
}

func TestTraceSinkKindFiltering(t *testing.T) {
	var buf strings.Builder
	sink := NewTraceSink(&buf, OpRegister)
	f := NewFabric("lorm")
	f.Observe(sink)

	finishOp(f, OpDiscover, "filtered-1", 2, 1)
	finishOp(f, OpRegister, "kept-1", 3, 0)
	finishOp(f, OpDiscover, "filtered-2", 1, 1)
	finishOp(f, OpRegister, "kept-2", 1, 0)

	if got := sink.Lines(); got != 2 {
		t.Fatalf("Lines() = %d, want 2 (filtered kinds must not count)", got)
	}
	out := buf.String()
	if strings.Contains(out, "op=discover") {
		t.Fatalf("filtered kind leaked into trace:\n%s", out)
	}
	if n := strings.Count(out, "op=register"); n != 2 {
		t.Fatalf("trace has %d register lines, want 2:\n%s", n, out)
	}
}

func TestTraceSinkNoKindsTracesEverything(t *testing.T) {
	var buf strings.Builder
	sink := NewTraceSink(&buf) // no kind filter
	f := NewFabric("maan")
	f.Observe(sink)
	finishOp(f, OpDiscover, "a", 1, 1)
	finishOp(f, OpRegister, "b", 1, 0)
	if sink.Lines() != 2 {
		t.Fatalf("Lines() = %d, want 2", sink.Lines())
	}
	for _, want := range []string{"op=discover", "op=register"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("unfiltered sink missing %s:\n%s", want, buf.String())
		}
	}
}

func TestLatencySeriesWithoutClock(t *testing.T) {
	lat := NewLatency(nil, 0.02)
	f := NewFabric("sword")
	f.Observe(lat)
	finishOp(f, OpDiscover, "a", 5, 0)
	finishOp(f, OpDiscover, "b", 2, 0)
	times, lats := lat.Series()
	if len(times) != 0 {
		t.Fatalf("clockless Series times = %v, want empty", times)
	}
	if len(lats) != 2 || lats[0] != 0.1 || lats[1] != 0.04 {
		t.Fatalf("latencies = %v", lats)
	}
}

func TestLatencySeriesClockStamping(t *testing.T) {
	clk := &fakeClock{}
	lat := NewLatency(clk, 1.0)
	f := NewFabric("mercury")
	f.Observe(lat)
	for i, at := range []float64{0.5, 1.25, 9.75} {
		clk.t = at
		finishOp(f, OpDiscover, "q", i+1, 0)
	}
	times, lats := lat.Series()
	if len(times) != 3 || times[0] != 0.5 || times[1] != 1.25 || times[2] != 9.75 {
		t.Fatalf("times = %v", times)
	}
	if len(lats) != 3 || lats[0] != 1 || lats[1] != 2 || lats[2] != 3 {
		t.Fatalf("latencies = %v", lats)
	}
	// Mutating the returned slices must not affect the accumulator.
	times[0] = -1
	again, _ := lat.Series()
	if again[0] != 0.5 {
		t.Fatal("Series must return copies")
	}
}

func TestPathlessObserversSkipStepRecording(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFabric("lorm")
	f.Observe(NewMetricsObserver(reg), NewLatency(nil, 0.01)) // both pathless
	op := f.Begin(OpDiscover, "x")
	op.Forward("n", 1, ReasonFingerForward)
	op.Visit("n", 1)
	if p := op.Path(); len(p) != 0 {
		t.Fatalf("pathless observers recorded a path: %v", p)
	}
	if c := op.Finish(); c.Hops != 1 || c.Visited != 1 {
		t.Fatalf("cost = %+v", c)
	}

	// Adding a path-consuming observer flips recording back on.
	f.Observe(&Recorder{})
	op2 := f.Begin(OpDiscover, "y")
	op2.Forward("n", 2, ReasonFingerForward)
	if p := op2.Path(); len(p) != 1 {
		t.Fatalf("path-consuming observer got no steps: %v", p)
	}
	op2.Finish()
}

func TestMetricsObserverRecordsOps(t *testing.T) {
	reg := metrics.NewRegistry()
	obs := NewMetricsObserver(reg)
	f := NewFabric("lorm")
	f.Observe(obs)

	finishOp(f, OpDiscover, "q1", 4, 2)
	finishOp(f, OpDiscover, "q2", 6, 1)
	finishOp(f, OpRegister, "r1", 3, 0)

	if obs.TotalOps() != 3 {
		t.Fatalf("TotalOps = %d, want 3", obs.TotalOps())
	}
	snap := reg.Snapshot()
	ops, ok := snap.Family("lorm_ops_total")
	if !ok {
		t.Fatal("missing lorm_ops_total")
	}
	// All four known systems are pre-initialized even with no traffic.
	seen := map[string]bool{}
	for _, m := range ops.Metrics {
		seen[m.Labels["system"]] = true
	}
	for _, sys := range KnownSystems {
		if !seen[sys] {
			t.Fatalf("system %s not pre-initialized: %v", sys, seen)
		}
	}
	var discovers float64
	for _, m := range ops.Metrics {
		if m.Labels["system"] == "lorm" && m.Labels["kind"] == "discover" {
			discovers = m.Value
		}
	}
	if discovers != 2 {
		t.Fatalf("lorm discover ops = %v, want 2", discovers)
	}
	hops, _ := snap.Family("lorm_op_hops")
	var discoverHops float64
	for _, m := range hops.Metrics {
		if m.Labels["system"] == "lorm" && m.Labels["kind"] == "discover" {
			discoverHops = m.Sum
		}
	}
	if discoverHops != 10 {
		t.Fatalf("lorm discover hop sum = %v, want 10", discoverHops)
	}

	total, systems := obs.Digest()
	if total != 3 {
		t.Fatalf("digest total = %d", total)
	}
	var lorm *SystemDigest
	for i := range systems {
		if systems[i].System == "lorm" {
			lorm = &systems[i]
		}
	}
	if lorm == nil || lorm.Ops != 3 {
		t.Fatalf("lorm digest = %+v", lorm)
	}
	if lorm.P99Hops < lorm.P50Hops {
		t.Fatalf("p99 %v < p50 %v", lorm.P99Hops, lorm.P50Hops)
	}
}

func TestMetricsObserverZeroAllocOnFinish(t *testing.T) {
	reg := metrics.NewRegistry()
	obs := NewMetricsObserver(reg)
	f := NewFabric("lorm")
	f.Observe(obs)
	op := f.Begin(OpDiscover, "warm")
	op.Forward("n", 1, ReasonFingerForward)
	op.Finish()

	// After handles are warm, the observer's finish path must not allocate.
	if n := testing.AllocsPerRun(500, func() {
		o := &Op{System: "lorm", Kind: OpDiscover}
		o.forwards = 3
		obs.OpFinished(o, o.Cost())
	}); n > 1 { // the &Op literal itself is the single tolerated alloc
		t.Fatalf("OpFinished allocates %v/op", n)
	}
}
