package routing

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseTraceLineRoundTrip drives a real op through a TraceSink and
// parses the emitted line back: the one writer and the one reader of the
// format must agree on every field.
func TestParseTraceLineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	f := NewFabric("lorm")
	f.Observe(NewTraceSink(&buf))

	op := f.Begin(OpDiscover, "req-007")
	op.Forward("cyc-00120", 120, ReasonFingerForward)
	op.Forward("cyc-00515", 515, ReasonRangeWalk)
	op.Visit("cyc-00515", 515)
	op.Forward("cyc-00516", 516, ReasonDetour)
	op.Forward("cyc-00517", 517, ReasonReplicaRead)
	op.Forward("cyc-00518", 518, ReasonReplicate)
	wantCost := op.Finish()

	line := strings.TrimSuffix(buf.String(), "\n")
	tl, err := ParseTraceLine(line)
	if err != nil {
		t.Fatalf("ParseTraceLine(%q): %v", line, err)
	}
	if tl.System != "lorm" || tl.Op != OpDiscover || tl.Tag != "req-007" {
		t.Fatalf("identity mismatch: %+v", tl)
	}
	if tl.Cost != wantCost {
		t.Fatalf("cost %+v != finished cost %+v", tl.Cost, wantCost)
	}
	if got := CostOfPath(tl.Path); got != wantCost {
		t.Fatalf("CostOfPath(parsed) = %+v, want %+v", got, wantCost)
	}
	wantReasons := []Reason{ReasonFingerForward, ReasonRangeWalk, ReasonDirectoryVisit,
		ReasonDetour, ReasonReplicaRead, ReasonReplicate}
	if len(tl.Path) != len(wantReasons) {
		t.Fatalf("parsed %d steps, want %d", len(tl.Path), len(wantReasons))
	}
	for i, want := range wantReasons {
		if tl.Path[i].Reason != want {
			t.Fatalf("step %d reason %v, want %v", i, tl.Path[i].Reason, want)
		}
	}
	if tl.Path[0].Addr != "cyc-00120" {
		t.Fatalf("step 0 addr %q", tl.Path[0].Addr)
	}
}

// TestParseTraceLineEmptyPath: a zero-hop op (e.g. a local directory-only
// answer) emits path= with no steps, which must parse to an empty path.
func TestParseTraceLineEmptyPath(t *testing.T) {
	tl, err := ParseTraceLine("system=maan op=register tag=own-1 hops=0 visited=0 msgs=0 path=")
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Path) != 0 || tl.Cost.Messages != 0 {
		t.Fatalf("unexpected parse: %+v", tl)
	}
	if tl.System != "maan" || tl.Op != OpRegister {
		t.Fatalf("identity mismatch: %+v", tl)
	}
}

// TestReasonLetterRoundTrip: every Reason survives Letter/ReasonFromLetter.
func TestReasonLetterRoundTrip(t *testing.T) {
	for r := Reason(0); int(r) < numReasons; r++ {
		got, ok := ReasonFromLetter(r.Letter())
		if !ok || got != r {
			t.Fatalf("reason %v: letter %q decoded to %v, ok=%v", r, r.Letter(), got, ok)
		}
	}
	if _, ok := ReasonFromLetter('x'); ok {
		t.Fatal("unknown letter accepted")
	}
}

// TestParseTraceLineErrors: malformed lines are rejected, not guessed at.
func TestParseTraceLineErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"system=lorm op=discover tag=a hops=1 visited=0 msgs=1", // missing path
		"op=discover system=lorm tag=a hops=1 visited=0 msgs=1 path=", // wrong order
		"system=lorm op=discover tag=a hops=one visited=0 msgs=1 path=", // non-integer
		"system=lorm op=discover tag=a hops=1 visited=0 msgs=1 path=q:n1", // unknown letter
		"system=lorm op=discover tag=a hops=1 visited=0 msgs=1 path=f-n1", // bad step syntax
	} {
		if _, err := ParseTraceLine(bad); err == nil {
			t.Errorf("ParseTraceLine(%q) accepted", bad)
		}
	}
}
