// Package routing is the unified routing fabric every discovery system
// accounts through: a per-operation Op context that records the full hop
// path of one Register or Discover operation — which nodes the query was
// forwarded through and why (finger forward, range walk, replica placement,
// directory visit) — and derives the paper's communication cost
// (discovery.Cost: hops, visited directory nodes, messages) in exactly one
// audited place.
//
// Before this layer existed, each of the four systems (LORM, Mercury,
// SWORD, MAAN) re-derived Cost by hand around every overlay call, ~15 call
// sites of ad-hoc arithmetic. Now the overlays record forwards as they
// route, the systems record walks and directory visits, and Cost falls out
// of the recorded path:
//
//	Hops     = forwards (finger + range-walk + replica placements)
//	Visited  = directory visits
//	Messages = Hops + Visited (one forward per hop, one reply per visit)
//
// A Fabric (one per system instance) owns pluggable Observers: a trace sink
// emitting per-query hop paths (cmd/lormsim -trace), a virtual-latency
// accumulator driven by sim.Scheduler time, or anything test code attaches.
// When no observer is attached, an Op keeps counters only and records no
// path, so the uninstrumented fast path stays allocation-light.
package routing

import (
	"sync"

	"lorm/internal/discovery"
)

// Reason classifies one step of an operation's path.
type Reason uint8

const (
	// ReasonFingerForward is an overlay routing forward: a Chord finger /
	// successor step or a Cycloid phase-routing step during a Lookup.
	ReasonFingerForward Reason = iota
	// ReasonRangeWalk is a forward to the next directory node along the
	// ring while resolving a range sub-query.
	ReasonRangeWalk
	// ReasonReplicate is a forward placing a replica copy on a successor
	// (the LORM replication extension).
	ReasonReplicate
	// ReasonDirectoryVisit is a directory consult: the node received the
	// query, checked its directory and replied. It counts toward Visited
	// (and one reply message), not toward Hops.
	ReasonDirectoryVisit
	// ReasonDetour is an overlay routing forward taken because the
	// preferred next hop (the best finger or phase link) was found dead:
	// the lookup fell back to a live successor-list or ring neighbor. It
	// is a real message on the wire, so it counts toward Hops exactly like
	// a finger forward — the Messages = Hops + Visited invariant holds
	// unchanged under failures.
	ReasonDetour
	// ReasonReplicaRead is the probe message of a replica-aware read: a
	// power-of-two-choices read contacts one replica holder (the lookup
	// routes there and the visit is recorded as usual) and probes a second
	// candidate holder for its load. The probe is a real message on the
	// wire, so it counts toward Hops and the Messages = Hops + Visited
	// invariant stays exact by construction.
	ReasonReplicaRead
	// ReasonTrieDescent is an ART overlay forward descending the
	// decentralized trie: one jump from a cluster-node to the representative
	// of the next deeper trie cluster sharing a longer identifier prefix
	// with the target key. Like a finger forward it is a real message on the
	// wire and counts toward Hops; the trie shape makes the number of such
	// steps per lookup O(log_b log n) instead of O(log n).
	ReasonTrieDescent

	// numReasons bounds the Reason enum; per-reason accounting (the
	// MetricsObserver step counters) sizes its tables with it.
	numReasons = int(ReasonTrieDescent) + 1
)

// Forwards reports whether the reason counts as a logical routing hop.
func (r Reason) Forwards() bool { return r != ReasonDirectoryVisit }

func (r Reason) String() string {
	switch r {
	case ReasonFingerForward:
		return "finger-forward"
	case ReasonRangeWalk:
		return "range-walk"
	case ReasonReplicate:
		return "replicate"
	case ReasonDirectoryVisit:
		return "directory-visit"
	case ReasonDetour:
		return "detour"
	case ReasonReplicaRead:
		return "replica-read"
	case ReasonTrieDescent:
		return "trie-descent"
	}
	return "unknown"
}

// Letter is the compact single-character encoding trace lines use.
func (r Reason) Letter() byte {
	switch r {
	case ReasonFingerForward:
		return 'f'
	case ReasonRangeWalk:
		return 'w'
	case ReasonReplicate:
		return 'r'
	case ReasonDirectoryVisit:
		return 'v'
	case ReasonDetour:
		return 'd'
	case ReasonReplicaRead:
		return 'p'
	case ReasonTrieDescent:
		return 't'
	}
	return '?'
}

// Step is one recorded element of an operation's path: the node it reached
// (address plus linearized overlay identifier) and why.
type Step struct {
	Addr   string
	ID     uint64
	Reason Reason
}

// Kind names the operation class an Op accounts for.
type Kind string

const (
	OpRegister Kind = "register"
	OpDiscover Kind = "discover"
)

// Op is the accounting context of one operation. The owning system creates
// it via Fabric.Begin, threads it through every overlay call the operation
// makes, and reads the derived Cost at the end. It is safe for concurrent
// use: a multi-attribute query fans its sub-queries out in parallel and all
// of them record into the same Op.
type Op struct {
	// System, Kind and Tag identify the operation in traces: the system
	// name, the operation class, and a caller-chosen label (the requester
	// or announcing owner).
	System string
	Kind   Kind
	Tag    string

	observers []Observer
	wantPath  bool // some attached observer consumes Path()

	// tc is the operation's trace identity; tstate is an opaque slot a
	// tracing observer may hang per-op state on. Both are written only
	// during Begin/OpBegun — before the Op escapes to other goroutines —
	// and read-only afterwards, so plain fields need no locking.
	tc     discovery.TraceContext
	tstate any

	mu       sync.Mutex
	forwards int
	visits   int
	steps    []Step // recorded only when an observer wants paths
	done     bool
}

// Forward records one logical routing hop to the given node. A nil Op
// ignores the call, so overlay-internal lookups (joins, finger repair) and
// tests route without accounting.
func (op *Op) Forward(addr string, id uint64, reason Reason) {
	if op == nil {
		return
	}
	op.record(Step{Addr: addr, ID: id, Reason: reason})
}

// Visit records a directory consult at the given node: the node checked its
// directory for the query and replied.
func (op *Op) Visit(addr string, id uint64) {
	if op == nil {
		return
	}
	op.record(Step{Addr: addr, ID: id, Reason: ReasonDirectoryVisit})
}

func (op *Op) record(st Step) {
	op.mu.Lock()
	if st.Reason.Forwards() {
		op.forwards++
	} else {
		op.visits++
	}
	if op.wantPath {
		op.steps = append(op.steps, st)
	}
	op.mu.Unlock()
	for _, o := range op.observers {
		o.OpStep(op, st)
	}
}

// Trace returns the operation's trace identity. For an Op begun through
// BeginTraced with a valid incoming context it carries the caller's trace
// ID; a tracing observer's OpBegun hook may replace it (SetTrace) with the
// identity of the span it opened for this Op.
func (op *Op) Trace() discovery.TraceContext {
	if op == nil {
		return discovery.TraceContext{}
	}
	return op.tc
}

// SetTrace replaces the operation's trace identity. It must only be called
// from an observer's OpBegun hook — i.e. before the Op escapes Begin — so
// the field stays effectively immutable to concurrent readers.
func (op *Op) SetTrace(tc discovery.TraceContext) { op.tc = tc }

// TraceState returns the opaque per-op slot a tracing observer stored via
// SetTraceState, or nil. Reading it costs nothing on untraced ops, which is
// what keeps the sampling-off fast path allocation-free.
func (op *Op) TraceState() any {
	if op == nil {
		return nil
	}
	return op.tstate
}

// SetTraceState stores opaque per-op observer state. Like SetTrace it must
// only be called from OpBegun, before the Op is shared across goroutines.
func (op *Op) SetTraceState(v any) { op.tstate = v }

// Cost derives the operation's communication cost from the recorded path.
// This is the single place in the codebase where a discovery.Cost is
// constructed from routing activity.
func (op *Op) Cost() discovery.Cost {
	if op == nil {
		return discovery.Cost{}
	}
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.costLocked()
}

func (op *Op) costLocked() discovery.Cost {
	return discovery.Cost{
		Hops:     op.forwards,
		Visited:  op.visits,
		Messages: op.forwards + op.visits,
	}
}

// Path returns a copy of the recorded steps. It is empty unless an observer
// was attached when the Op began.
func (op *Op) Path() []Step {
	if op == nil {
		return nil
	}
	op.mu.Lock()
	defer op.mu.Unlock()
	return append([]Step(nil), op.steps...)
}

// Finish marks the operation complete, notifies observers exactly once, and
// returns the derived cost. Subsequent calls return the cost without
// re-notifying, so `defer op.Finish()` composes with explicit returns of
// op.Cost().
func (op *Op) Finish() discovery.Cost {
	if op == nil {
		return discovery.Cost{}
	}
	op.mu.Lock()
	cost := op.costLocked()
	already := op.done
	op.done = true
	op.mu.Unlock()
	if !already {
		for _, o := range op.observers {
			o.OpFinished(op, cost)
		}
	}
	return cost
}

// Observer receives routing activity from every Op of a Fabric. Methods
// must be safe for concurrent use; OpStep is called outside the Op's lock.
type Observer interface {
	// OpStep fires once per recorded step (forward or visit).
	OpStep(op *Op, st Step)
	// OpFinished fires exactly once when the operation completes, with the
	// derived cost.
	OpFinished(op *Op, cost discovery.Cost)
}

// Fabric is one system's routing-accounting context: it stamps Ops with the
// system name and owns the observer set. The zero value is unusable; create
// one per system instance with NewFabric.
type Fabric struct {
	system string

	mu        sync.RWMutex
	observers []Observer
}

// NewFabric creates a fabric for the named system.
func NewFabric(system string) *Fabric {
	return &Fabric{system: system}
}

// System returns the owning system's name.
func (f *Fabric) System() string { return f.system }

// Observe attaches observers to every subsequently begun Op. The observer
// slice is copy-on-write: live Ops hold the set they began with.
func (f *Fabric) Observe(obs ...Observer) {
	f.mu.Lock()
	next := make([]Observer, 0, len(f.observers)+len(obs))
	next = append(next, f.observers...)
	next = append(next, obs...)
	f.observers = next
	f.mu.Unlock()
}

// Detach removes a previously attached observer from subsequently begun
// Ops; operations already in flight keep reporting to it.
func (f *Fabric) Detach(o Observer) {
	f.mu.Lock()
	next := make([]Observer, 0, len(f.observers))
	for _, x := range f.observers {
		if x != o {
			next = append(next, x)
		}
	}
	f.observers = next
	f.mu.Unlock()
}

// PathSkipper is optionally implemented by observers that never read
// op.Path(). An observer reporting NeedsPath() == false (MetricsObserver,
// Latency) does not force step recording; observers without the method are
// assumed to want paths (TraceSink, Recorder). When no attached observer
// wants paths, Ops stay counter-only and the record path allocation-free,
// so always-on metrics never tax the lookup fast path.
type PathSkipper interface {
	NeedsPath() bool
}

// wantsPath reports whether any observer in the set consumes op.Path().
func wantsPath(obs []Observer) bool {
	for _, o := range obs {
		if ps, ok := o.(PathSkipper); !ok || ps.NeedsPath() {
			return true
		}
	}
	return false
}

// BeginObserver is optionally implemented by observers that need to see an
// Op at creation time — before any step is recorded and before the Op is
// shared across goroutines. A tracing observer uses the hook to make its
// sampling decision and attach per-op span state (SetTrace/SetTraceState);
// OpBegun is the only point where those setters are legal.
type BeginObserver interface {
	OpBegun(op *Op)
}

// Begin starts accounting one operation. The observer set is captured at
// begin time, so attaching mid-operation affects only later Ops.
func (f *Fabric) Begin(kind Kind, tag string) *Op {
	return f.BeginTraced(kind, tag, discovery.TraceContext{})
}

// BeginTraced starts accounting one operation under a caller-provided trace
// context (the wire-propagated identity of a remote caller's span). A zero
// context is identical to Begin: any tracing observer starts a fresh trace.
func (f *Fabric) BeginTraced(kind Kind, tag string, tc discovery.TraceContext) *Op {
	f.mu.RLock()
	obs := f.observers
	f.mu.RUnlock()
	op := &Op{System: f.system, Kind: kind, Tag: tag, observers: obs, wantPath: wantsPath(obs), tc: tc}
	for _, o := range obs {
		if b, ok := o.(BeginObserver); ok {
			b.OpBegun(op)
		}
	}
	return op
}

// Instrumented is implemented by every system that routes its accounting
// through a Fabric; the experiment harness uses it to attach observers
// without depending on concrete system types.
type Instrumented interface {
	RoutingFabric() *Fabric
}
