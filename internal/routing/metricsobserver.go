package routing

import (
	"sort"
	"sync"
	"sync/atomic"

	"lorm/internal/discovery"
	"lorm/internal/metrics"
)

// KnownSystems lists the paper's four discovery systems plus ART, the
// sub-logarithmic fifth; the MetricsObserver pre-initializes every
// (system, kind) series for them so a scrape shows all labels at zero
// before any traffic arrives.
var KnownSystems = []string{"art", "lorm", "maan", "mercury", "sword"}

// MetricsObserver mirrors every finished operation of the fabrics it is
// attached to into a metrics.Registry: an op counter plus hop/visited/
// message histograms, all labeled (system, kind). It never consumes
// op.Path() (NeedsPath reports false), so attaching it does not switch the
// fabric into path-recording mode — ops stay counter-only and
// allocation-light, and OpFinished itself performs only a read-locked map
// probe plus atomic adds.
type MetricsObserver struct {
	ops      *metrics.CounterVec
	hops     *metrics.HistogramVec
	visited  *metrics.HistogramVec
	messages *metrics.HistogramVec
	steps    *metrics.CounterVec

	total atomic.Uint64 // all finished ops, for cheap progress heartbeats

	mu          sync.RWMutex
	handles     map[seriesKey]*seriesHandles
	stepHandles map[string]*[numReasons]*metrics.Counter
}

type seriesKey struct {
	system string
	kind   Kind
}

// seriesHandles caches one (system, kind) series' pre-resolved metrics so
// OpFinished never pays the labeled With lookup.
type seriesHandles struct {
	ops      *metrics.Counter
	hops     *metrics.Histogram
	visited  *metrics.Histogram
	messages *metrics.Histogram
}

// NewMetricsObserver registers the op metric families on reg (idempotently)
// and pre-initializes series for every known system and kind.
func NewMetricsObserver(reg *metrics.Registry) *MetricsObserver {
	m := &MetricsObserver{
		ops:         reg.CounterVec("lorm_ops_total", "finished register/discover operations", "system", "kind"),
		hops:        reg.HistogramVec("lorm_op_hops", "logical routing hops per operation", "system", "kind"),
		visited:     reg.HistogramVec("lorm_op_visited", "directory nodes visited per operation", "system", "kind"),
		messages:    reg.HistogramVec("lorm_op_messages", "messages per operation", "system", "kind"),
		steps:       reg.CounterVec("lorm_op_steps_total", "recorded routing steps by reason", "system", "reason"),
		handles:     make(map[seriesKey]*seriesHandles),
		stepHandles: make(map[string]*[numReasons]*metrics.Counter),
	}
	for _, sys := range KnownSystems {
		for _, kind := range []Kind{OpRegister, OpDiscover} {
			m.handlesFor(sys, kind)
		}
		m.stepHandlesFor(sys)
	}
	return m
}

// handlesFor resolves (and caches) the series handles for one system/kind.
func (m *MetricsObserver) handlesFor(system string, kind Kind) *seriesHandles {
	key := seriesKey{system: system, kind: kind}
	m.mu.RLock()
	h, ok := m.handles[key]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.handles[key]; ok {
		return h
	}
	k := string(kind)
	h = &seriesHandles{
		ops:      m.ops.With(system, k),
		hops:     m.hops.With(system, k),
		visited:  m.visited.With(system, k),
		messages: m.messages.With(system, k),
	}
	m.handles[key] = h
	return h
}

// stepHandlesFor resolves (and caches) one system's per-reason step
// counters, so OpStep pays a read-locked map probe plus one atomic add.
func (m *MetricsObserver) stepHandlesFor(system string) *[numReasons]*metrics.Counter {
	m.mu.RLock()
	h, ok := m.stepHandles[system]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.stepHandles[system]; ok {
		return h
	}
	h = new([numReasons]*metrics.Counter)
	for r := 0; r < numReasons; r++ {
		h[r] = m.steps.With(system, Reason(r).String())
	}
	m.stepHandles[system] = h
	return h
}

// NeedsPath reports that this observer never reads op.Path(), letting the
// fabric skip step recording when only metrics observers are attached.
func (m *MetricsObserver) NeedsPath() bool { return false }

// OpStep implements Observer: it counts every recorded step into the
// reason-labeled lorm_op_steps_total family. cmd/metricscheck cross-checks
// the replication counters against the replicate/replica-read series.
func (m *MetricsObserver) OpStep(op *Op, st Step) {
	if int(st.Reason) >= numReasons {
		return
	}
	m.stepHandlesFor(op.System)[st.Reason].Inc()
}

// OpFinished implements Observer.
func (m *MetricsObserver) OpFinished(op *Op, cost discovery.Cost) {
	h := m.handlesFor(op.System, op.Kind)
	h.ops.Inc()
	h.hops.ObserveInt(cost.Hops)
	h.visited.ObserveInt(cost.Visited)
	h.messages.ObserveInt(cost.Messages)
	m.total.Add(1)
}

// TotalOps returns the number of finished operations observed so far across
// all systems and kinds.
func (m *MetricsObserver) TotalOps() uint64 { return m.total.Load() }

// SystemDigest condenses one system's op metrics for compact remote
// reporting (the lormnode stats reply).
type SystemDigest struct {
	System  string
	Ops     uint64
	P50Hops float64
	P99Hops float64
}

// Digest summarizes the observed operations: the grand total plus, per
// system (kinds merged), the op count and estimated p50/p99 hops. Systems
// are sorted by name; pre-initialized zero-traffic systems are included.
func (m *MetricsObserver) Digest() (totalOps uint64, systems []SystemDigest) {
	m.mu.RLock()
	perSys := make(map[string]*struct {
		ops  uint64
		hops metrics.HistogramValue
	})
	for key, h := range m.handles {
		agg := perSys[key.system]
		if agg == nil {
			agg = &struct {
				ops  uint64
				hops metrics.HistogramValue
			}{}
			perSys[key.system] = agg
		}
		agg.ops += h.ops.Value()
		agg.hops.Merge(h.hops.Value())
	}
	m.mu.RUnlock()
	for sys, agg := range perSys {
		totalOps += agg.ops
		systems = append(systems, SystemDigest{
			System:  sys,
			Ops:     agg.ops,
			P50Hops: agg.hops.Quantile(0.50),
			P99Hops: agg.hops.Quantile(0.99),
		})
	}
	sort.Slice(systems, func(i, j int) bool { return systems[i].System < systems[j].System })
	return totalOps, systems
}
