package routing

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"lorm/internal/discovery"
)

// TraceSink writes one line per finished operation: the system, kind, tag,
// derived cost and the full hop path in compact `reason:addr` form, e.g.
//
//	system=lorm op=discover tag=requester-007 hops=9 visited=3 msgs=12 path=f:cyc-00120,f:cyc-00515,v:cyc-00515,w:cyc-00516,v:cyc-00516
//
// Reasons are encoded by Reason.Letter: f = finger-forward, w = range-walk,
// r = replicate, v = directory-visit, d = detour (forward past a dead
// preferred hop), p = replica-read probe (power-of-two-choices load probe
// of a second replica holder). The number of non-v steps equals the reported Hops and the
// number of v steps equals Visited — consumers can (and the CLI test does)
// re-derive the cost from the path.
type TraceSink struct {
	mu    sync.Mutex
	w     io.Writer
	kinds map[Kind]bool // nil: trace every kind
	lines int
	err   error
}

// NewTraceSink traces finished ops to w. With no kinds, every operation is
// traced; otherwise only the listed kinds are.
func NewTraceSink(w io.Writer, kinds ...Kind) *TraceSink {
	t := &TraceSink{w: w}
	if len(kinds) > 0 {
		t.kinds = make(map[Kind]bool, len(kinds))
		for _, k := range kinds {
			t.kinds[k] = true
		}
	}
	return t
}

// OpStep implements Observer (path assembly happens at finish).
func (t *TraceSink) OpStep(*Op, Step) {}

// OpFinished implements Observer.
func (t *TraceSink) OpFinished(op *Op, cost discovery.Cost) {
	if t.kinds != nil && !t.kinds[op.Kind] {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "system=%s op=%s tag=%s hops=%d visited=%d msgs=%d path=",
		op.System, op.Kind, op.Tag, cost.Hops, cost.Visited, cost.Messages)
	for i, st := range op.Path() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(st.Reason.Letter())
		b.WriteByte(':')
		b.WriteString(st.Addr)
	}
	b.WriteByte('\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		_, t.err = io.WriteString(t.w, b.String())
	}
	t.lines++
}

// Lines returns the number of operations traced so far.
func (t *TraceSink) Lines() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lines
}

// Err returns the first write error, if any.
func (t *TraceSink) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Clock is the virtual-time source a Latency observer stamps operations
// with; sim.Scheduler satisfies it.
type Clock interface {
	Now() float64
}

// Latency accumulates per-hop virtual latency: every logical forward costs
// PerHop virtual seconds, so a finished operation's latency is
// Cost.Hops × PerHop — the network delay a real deployment would pay for
// the same path. When a Clock is supplied (the churn experiments pass their
// sim.Scheduler), each finished op is also stamped with the virtual time it
// completed at, giving a (time, latency) series over the run.
type Latency struct {
	perHop float64
	clock  Clock

	mu      sync.Mutex
	ops     int
	total   float64
	stamps  []float64 // virtual completion times, when a clock is attached
	perOpNs []float64 // per-op latencies, same order as stamps when clocked
}

// NewLatency creates an accumulator charging perHop virtual seconds per
// logical hop. clock may be nil.
func NewLatency(clock Clock, perHop float64) *Latency {
	return &Latency{clock: clock, perHop: perHop}
}

// NeedsPath reports that latency accounting derives from the cost alone,
// so this observer never forces step recording.
func (l *Latency) NeedsPath() bool { return false }

// OpStep implements Observer; latency is derived at finish from the hop
// count, so steps need no work.
func (l *Latency) OpStep(*Op, Step) {}

// OpFinished implements Observer.
func (l *Latency) OpFinished(op *Op, cost discovery.Cost) {
	lat := float64(cost.Hops) * l.perHop
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ops++
	l.total += lat
	l.perOpNs = append(l.perOpNs, lat)
	if l.clock != nil {
		l.stamps = append(l.stamps, l.clock.Now())
	}
}

// Ops returns the number of finished operations observed.
func (l *Latency) Ops() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ops
}

// Total returns the accumulated virtual latency (seconds).
func (l *Latency) Total() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Mean returns the average per-operation virtual latency, 0 with no ops.
func (l *Latency) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ops == 0 {
		return 0
	}
	return l.total / float64(l.ops)
}

// Series returns copies of the (completion time, latency) observations;
// times are empty when no Clock was attached.
func (l *Latency) Series() (times, latencies []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.stamps...), append([]float64(nil), l.perOpNs...)
}

// Record is one finished operation as seen by a Recorder.
type Record struct {
	System string
	Kind   Kind
	Tag    string
	Cost   discovery.Cost
	Path   []Step
}

// Recorder collects every finished operation with its full path — the
// test-facing observer used to audit that reported costs equal the recorded
// paths.
type Recorder struct {
	mu   sync.Mutex
	recs []Record
}

// OpStep implements Observer.
func (r *Recorder) OpStep(*Op, Step) {}

// OpFinished implements Observer.
func (r *Recorder) OpFinished(op *Op, cost discovery.Cost) {
	r.mu.Lock()
	r.recs = append(r.recs, Record{System: op.System, Kind: op.Kind, Tag: op.Tag, Cost: cost, Path: op.Path()})
	r.mu.Unlock()
}

// Records returns a copy of everything observed so far.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

// CostOfPath re-derives a cost from a recorded path; tests compare it to
// the reported cost to prove the two can never diverge.
func CostOfPath(path []Step) discovery.Cost {
	var c discovery.Cost
	for _, st := range path {
		if st.Reason.Forwards() {
			c.Hops++
		} else {
			c.Visited++
		}
	}
	c.Messages = c.Hops + c.Visited
	return c
}
