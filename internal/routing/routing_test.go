package routing

import (
	"math"
	"strings"
	"sync"
	"testing"

	"lorm/internal/discovery"
)

func TestCostDerivation(t *testing.T) {
	f := NewFabric("lorm")
	op := f.Begin(OpDiscover, "req-1")
	op.Forward("n1", 1, ReasonFingerForward)
	op.Forward("n2", 2, ReasonFingerForward)
	op.Visit("n2", 2)
	op.Forward("n3", 3, ReasonRangeWalk)
	op.Visit("n3", 3)
	got := op.Cost()
	want := discovery.Cost{Hops: 3, Visited: 2, Messages: 5}
	if got != want {
		t.Fatalf("Cost = %+v, want %+v", got, want)
	}
	if fin := op.Finish(); fin != want {
		t.Fatalf("Finish = %+v, want %+v", fin, want)
	}
}

func TestRegisterCostMatchesLegacyRule(t *testing.T) {
	// Register operations never visit directories: Messages must equal Hops,
	// matching the pre-fabric ad-hoc arithmetic at every register call site.
	f := NewFabric("sword")
	op := f.Begin(OpRegister, "owner-3")
	for i := 0; i < 7; i++ {
		op.Forward("n", uint64(i), ReasonFingerForward)
	}
	op.Forward("n", 8, ReasonReplicate)
	c := op.Finish()
	if c.Hops != 8 || c.Visited != 0 || c.Messages != 8 {
		t.Fatalf("register cost = %+v, want {8 0 8}", c)
	}
}

func TestNilOpSafe(t *testing.T) {
	var op *Op
	op.Forward("n", 1, ReasonFingerForward) // must not panic
	op.Visit("n", 1)
	if c := op.Cost(); c != (discovery.Cost{}) {
		t.Fatalf("nil op cost = %+v", c)
	}
	if c := op.Finish(); c != (discovery.Cost{}) {
		t.Fatalf("nil op finish = %+v", c)
	}
	if p := op.Path(); p != nil {
		t.Fatalf("nil op path = %v", p)
	}
}

func TestConcurrentSubQueriesShareOp(t *testing.T) {
	f := NewFabric("maan")
	rec := &Recorder{}
	f.Observe(rec)
	op := f.Begin(OpDiscover, "req-9")
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op.Forward("n", uint64(w), ReasonFingerForward)
				op.Visit("n", uint64(w))
			}
		}(w)
	}
	wg.Wait()
	c := op.Finish()
	if c.Hops != workers*per || c.Visited != workers*per || c.Messages != 2*workers*per {
		t.Fatalf("concurrent cost = %+v", c)
	}
	if got := CostOfPath(op.Path()); got != c {
		t.Fatalf("CostOfPath = %+v, cost = %+v", got, c)
	}
}

func TestFinishIdempotent(t *testing.T) {
	f := NewFabric("mercury")
	rec := &Recorder{}
	f.Observe(rec)
	op := f.Begin(OpDiscover, "x")
	op.Forward("n", 1, ReasonFingerForward)
	op.Finish()
	op.Finish()
	op.Finish()
	if n := len(rec.Records()); n != 1 {
		t.Fatalf("observer notified %d times, want 1", n)
	}
}

func TestObserverCopyOnWrite(t *testing.T) {
	f := NewFabric("lorm")
	rec := &Recorder{}
	op := f.Begin(OpDiscover, "before-attach") // begun with no observers
	f.Observe(rec)
	op.Forward("n", 1, ReasonFingerForward)
	op.Finish()
	if n := len(rec.Records()); n != 0 {
		t.Fatalf("observer attached mid-op saw %d records, want 0", n)
	}
	op2 := f.Begin(OpDiscover, "after-attach")
	op2.Visit("n", 2)
	f.Detach(rec) // in-flight op2 keeps reporting
	op2.Finish()
	recs := rec.Records()
	if len(recs) != 1 || recs[0].Tag != "after-attach" {
		t.Fatalf("records = %+v", recs)
	}
	op3 := f.Begin(OpDiscover, "after-detach")
	op3.Finish()
	if n := len(rec.Records()); n != 1 {
		t.Fatalf("detached observer still notified: %d records", n)
	}
}

func TestPathRecordedOnlyWithObservers(t *testing.T) {
	f := NewFabric("lorm")
	op := f.Begin(OpDiscover, "bare")
	op.Forward("n", 1, ReasonFingerForward)
	if p := op.Path(); len(p) != 0 {
		t.Fatalf("unobserved op recorded path %v", p)
	}
	if c := op.Cost(); c.Hops != 1 {
		t.Fatalf("counters must still run without observers: %+v", c)
	}
}

func TestTraceSinkFormatAndFilter(t *testing.T) {
	var buf strings.Builder
	sink := NewTraceSink(&buf, OpDiscover)
	f := NewFabric("lorm")
	f.Observe(sink)

	reg := f.Begin(OpRegister, "owner-1")
	reg.Forward("a", 1, ReasonFingerForward)
	reg.Finish() // filtered out

	disc := f.Begin(OpDiscover, "req-2")
	disc.Forward("a", 1, ReasonFingerForward)
	disc.Visit("a", 1)
	disc.Forward("b", 2, ReasonRangeWalk)
	disc.Visit("b", 2)
	disc.Finish()

	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "system=lorm op=discover tag=req-2 hops=2 visited=2 msgs=4 path=f:a,v:a,w:b,v:b\n"
	if out != want {
		t.Fatalf("trace output:\n%q\nwant:\n%q", out, want)
	}
}

type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

func TestLatencyAccumulator(t *testing.T) {
	clk := &fakeClock{}
	lat := NewLatency(clk, 0.05)
	f := NewFabric("lorm")
	f.Observe(lat)

	clk.t = 1.0
	op := f.Begin(OpDiscover, "a")
	op.Forward("n", 1, ReasonFingerForward)
	op.Forward("n", 2, ReasonFingerForward)
	op.Finish()

	clk.t = 2.5
	op2 := f.Begin(OpDiscover, "b")
	op2.Forward("n", 3, ReasonFingerForward)
	op2.Finish()

	if lat.Ops() != 2 {
		t.Fatalf("ops = %d", lat.Ops())
	}
	if got, want := lat.Total(), 0.15; math.Abs(got-want) > 1e-12 {
		t.Fatalf("total = %v, want %v", got, want)
	}
	if got, want := lat.Mean(), 0.075; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	times, lats := lat.Series()
	if len(times) != 2 || times[0] != 1.0 || times[1] != 2.5 {
		t.Fatalf("times = %v", times)
	}
	if len(lats) != 2 || lats[0] != 0.1 || lats[1] != 0.05 {
		t.Fatalf("latencies = %v", lats)
	}
}

func TestReasonEncoding(t *testing.T) {
	cases := []struct {
		r       Reason
		letter  byte
		name    string
		forward bool
	}{
		{ReasonFingerForward, 'f', "finger-forward", true},
		{ReasonRangeWalk, 'w', "range-walk", true},
		{ReasonReplicate, 'r', "replicate", true},
		{ReasonDirectoryVisit, 'v', "directory-visit", false},
	}
	for _, c := range cases {
		if c.r.Letter() != c.letter || c.r.String() != c.name || c.r.Forwards() != c.forward {
			t.Fatalf("reason %d: letter=%c string=%s forwards=%v", c.r, c.r.Letter(), c.r, c.r.Forwards())
		}
	}
}
