// Package lorm is a from-scratch Go reproduction of "Performance Analysis
// of DHT Algorithms for Range-Query and Multi-Attribute Resource Discovery
// in Grids" (Shen and Xu, ICPP 2009).
//
// The module implements the paper's primary contribution — LORM, a
// low-overhead range-query multi-attribute resource discovery service over
// a single hierarchical Cycloid DHT (internal/core) — together with every
// substrate and baseline the evaluation depends on: the Cycloid and Chord
// overlays, the Mercury/SWORD/MAAN comparison systems, consistent and
// locality-preserving hashing, a Bounded-Pareto workload generator, a
// Poisson churn driver over a discrete-event simulator, the closed-form
// analytical model of Theorems 4.1–4.10, a TCP gateway protocol, and an
// experiment harness that regenerates every figure of Section V.
//
// Start with README.md, run experiments with cmd/lormsim, serve discovery
// over TCP with cmd/lormnode, and see examples/ for runnable scenarios.
// The root-level benchmarks in bench_test.go regenerate each figure under
// `go test -bench`.
package lorm
