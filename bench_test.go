// Figure-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation. Each iteration regenerates the figure's data at the
// Quick preset (shapes identical to the paper's operating point; see
// cmd/lormsim -preset paper for full scale) and reports headline metrics
// via b.ReportMetric so `go test -bench . -benchmem` doubles as a compact
// reproduction run.
package lorm_test

import (
	"math/rand"
	"sync"
	"testing"

	"lorm/internal/chord"
	"lorm/internal/cycloid"
	"lorm/internal/experiments"
	"lorm/internal/systemtest"
)

// benchEnv caches ONE populated Quick environment, shared by the
// benchmarks that only read it (the registration workload dominates setup
// cost, so rebuilding per benchmark would drown the measurement).
//
// Sharing contract: the static-figure benchmarks — Fig3bcd, Fig4, Fig5 —
// run queries against the cached env but never mutate membership or
// directories, so they may run in any order and any subset. Anything that
// mutates the environment (churn, joins, crashes) must NOT use getEnv:
// the Fig6 benchmarks build a private env per iteration inside
// experiments.Fig6, and Fig3a builds its own envs per network size, so
// their results cannot leak into (or depend on) the shared instance.
var (
	benchEnv     *experiments.Env
	benchEnvOnce sync.Once
	benchEnvErr  error
)

func getEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(experiments.Quick())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkFig3aOutlinks regenerates Figure 3(a): per-node outlinks versus
// network size for Mercury, "Analysis>LORM" and LORM (Theorem 4.1).
func BenchmarkFig3aOutlinks(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig3a(p)
		if err != nil {
			b.Fatal(err)
		}
		last := len(tbl.Rows) - 1
		b.ReportMetric(tbl.Column("mercury")[last], "mercury-outlinks")
		b.ReportMetric(tbl.Column("lorm")[last], "lorm-outlinks")
	}
}

// BenchmarkFig3bDirectoryMAAN regenerates Figure 3(b): directory-size
// distribution, MAAN versus LORM (Theorems 4.2, 4.3).
func BenchmarkFig3bDirectoryMAAN(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, _, _, _ := experiments.Fig3bcd(env)
		b.ReportMetric(tbl.Column("maan")[1], "maan-avg-dir")
		b.ReportMetric(tbl.Column("lorm")[1], "lorm-avg-dir")
	}
}

// BenchmarkFig3cDirectorySWORD regenerates Figure 3(c): directory-size
// distribution, SWORD versus LORM (Theorems 4.2, 4.4).
func BenchmarkFig3cDirectorySWORD(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		_, tbl, _, _ := experiments.Fig3bcd(env)
		b.ReportMetric(tbl.Column("sword")[2], "sword-p99-dir")
		b.ReportMetric(tbl.Column("lorm")[2], "lorm-p99-dir")
	}
}

// BenchmarkFig3dDirectoryMercury regenerates Figure 3(d): directory-size
// distribution, Mercury versus LORM (Theorems 4.2, 4.5).
func BenchmarkFig3dDirectoryMercury(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		_, _, tbl, _ := experiments.Fig3bcd(env)
		b.ReportMetric(tbl.Column("mercury")[2], "mercury-p99-dir")
		b.ReportMetric(tbl.Column("lorm")[2], "lorm-p99-dir")
	}
}

// BenchmarkFig4aHops regenerates Figure 4(a): average logical hops per
// non-range query versus attribute count (Theorems 4.7, 4.8).
func BenchmarkFig4aHops(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		avg, _, err := experiments.Fig4(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg.Column("maan")[0], "maan-hops-1attr")
		b.ReportMetric(avg.Column("lorm")[0], "lorm-hops-1attr")
	}
}

// BenchmarkFig4bTotalHops regenerates Figure 4(b): total logical hops for
// the whole query load versus attribute count.
func BenchmarkFig4bTotalHops(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		_, total, err := experiments.Fig4(env)
		if err != nil {
			b.Fatal(err)
		}
		last := len(total.Rows) - 1
		b.ReportMetric(total.Column("maan")[last], "maan-total-hops")
		b.ReportMetric(total.Column("lorm")[last], "lorm-total-hops")
	}
}

// BenchmarkFig5aRangeVisitsTotal regenerates Figure 5(a): total visited
// nodes for range queries, system-wide probers versus LORM (Theorem 4.9).
func BenchmarkFig5aRangeVisitsTotal(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		total, _, err := experiments.Fig5(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(total.Column("mercury")[0], "mercury-total-visited")
		b.ReportMetric(total.Column("lorm")[0], "lorm-total-visited")
	}
}

// BenchmarkFig5bRangeVisitsAvg regenerates Figure 5(b): average visited
// nodes per range query, SWORD versus LORM close-up.
func BenchmarkFig5bRangeVisitsAvg(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		_, avg, err := experiments.Fig5(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg.Column("lorm")[0], "lorm-visited-1attr")
		b.ReportMetric(avg.Column("sword")[0], "sword-visited-1attr")
	}
}

// BenchmarkLookupParallel measures raw concurrent lookup throughput on the
// two overlays: every worker routes from a random start node to a random
// key with no system logic on top. This is the contention benchmark for the
// overlays' read path — membership is static, so any time not spent routing
// is synchronization overhead.
func BenchmarkLookupParallel(b *testing.B) {
	b.Run("chord", func(b *testing.B) {
		r := chord.New(chord.Config{Bits: 18})
		if err := r.AddBulk(systemtest.Addresses(1024)); err != nil {
			b.Fatal(err)
		}
		nodes := r.Nodes()
		mask := uint64(1)<<18 - 1
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(int64(b.N)))
			for pb.Next() {
				key := rng.Uint64() & mask
				if _, err := r.Lookup(nodes[rng.Intn(len(nodes))], key); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("cycloid", func(b *testing.B) {
		o := cycloid.MustNew(cycloid.Config{D: 8})
		if err := o.AddComplete(); err != nil {
			b.Fatal(err)
		}
		nodes := o.Nodes()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(int64(b.N)))
			for pb.Next() {
				key := o.IDOf(rng.Uint64() % o.Capacity())
				if _, err := o.Lookup(nodes[rng.Intn(len(nodes))], key); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkFig6aChurnHops regenerates Figure 6(a): average hops per
// non-range query under churn. Churn mutates membership and directories,
// so this benchmark must not touch the shared benchEnv: experiments.Fig6
// builds a private environment per churn rate, every iteration.
func BenchmarkFig6aChurnHops(b *testing.B) {
	p := experiments.Quick()
	p.ChurnRates = []float64{0.4}
	for i := 0; i < b.N; i++ {
		hops, _, err := experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(hops.Column("lorm")[0], "lorm-churn-hops")
		b.ReportMetric(hops.Column("failures")[0], "failures")
	}
}

// BenchmarkFig6bChurnVisits regenerates Figure 6(b): average visited nodes
// per range query under churn. Like Fig6a it builds private environments
// inside experiments.Fig6 rather than sharing benchEnv.
func BenchmarkFig6bChurnVisits(b *testing.B) {
	p := experiments.Quick()
	p.ChurnRates = []float64{0.4}
	for i := 0; i < b.N; i++ {
		_, visited, err := experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(visited.Column("lorm")[0], "lorm-churn-visited")
		b.ReportMetric(visited.Column("mercury")[0], "mercury-churn-visited")
	}
}
